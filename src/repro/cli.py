"""Command-line interface.

Subcommands::

    hyqsat solve <file.cnf> [--classic] [--noise] [--seed N]
                 [--qa-faults SPEC] [--qa-retries N] [--qa-budget-us T]
                 [--trace FILE] [--profile] [--metrics FILE]
    hyqsat generate <benchmark> [--index I] [--seed N] [-o out.cnf]
    hyqsat embed <file.cnf> [--scheme hyqsat|minorminer|pr] [--grid N]
    hyqsat suite [--benchmarks GC1,AI1,...] [--problems N] [--jobs N]
    hyqsat trace-report <trace.jsonl>
    hyqsat submit <file.cnf> [--queue jobs.jsonl] [--priority P]
    hyqsat serve <jobs.jsonl|dir|-> [--jobs N] [-o results.jsonl]
    hyqsat batch <dir> [--jobs N] [-o results.jsonl]
    hyqsat gateway [--port N] [--fleet chimera:8,pegasus:8] [--jobs N]
    hyqsat connect <file.cnf ...> [--port N] [--api-key KEY]

``solve`` runs HyQSAT (or the classic CDCL baseline) on a DIMACS file;
``generate`` materialises a benchmark instance; ``embed`` reports
embedding statistics; ``suite`` reproduces a small Table I slice;
``trace-report`` summarises a ``--trace`` JSONL file.  The solve-time
observability flags (``--trace``, ``--profile``, ``--metrics``) are
documented in docs/TELEMETRY.md.

``gateway``/``connect`` are the network surface (docs/GATEWAY.md):
``gateway`` serves the solver over TCP — a versioned JSONL protocol
with streaming results, backpressure, per-tenant rate limits, and a
heterogeneous QPU fleet with topology-aware routing — and ``connect``
is its client (submit, stream, cancel, ping).

``submit``/``serve``/``batch`` are the solver-service surface
(docs/SERVICE.md): ``submit`` appends one job line to a job JSONL
file, ``serve`` runs a job file (or every ``*.jsonl`` in a directory,
or stdin) through the concurrent service, and ``batch`` is the
shorthand that turns every ``*.cnf`` in a directory into one job each.
Per fixed job seed, service results are bit-identical to solo
``hyqsat solve`` runs regardless of ``--jobs``.

``solve`` and ``suite`` handle Ctrl-C gracefully: open ``--trace`` /
``--metrics`` files are flushed with whatever was recorded and a
partial summary is printed instead of a traceback (exit status 130).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional


def _fault_model_or_exit(text: str):
    """Parse ``--qa-faults`` with CLI-friendly errors."""
    from repro.annealer import parse_fault_spec

    try:
        return parse_fault_spec(text)
    except ValueError as error:
        raise SystemExit(f"--qa-faults: {error}")


def _jobspec_from_args(
    args: argparse.Namespace,
    job_id: str,
    path: Optional[str] = None,
    dimacs: Optional[str] = None,
    seed: Optional[int] = None,
):
    """Build the :class:`~repro.service.JobSpec` these CLI options
    describe — the single construction path shared by ``solve``,
    ``submit``, and ``batch``, which is what makes service results
    bit-identical to solo solves."""
    from repro.service import JobSpec

    if getattr(args, "qa_faults", None):
        _fault_model_or_exit(args.qa_faults)  # friendlier error first
    try:
        return JobSpec(
            job_id=job_id,
            path=path,
            dimacs=dimacs,
            seed=args.seed if seed is None else seed,
            priority=getattr(args, "priority", "batch"),
            deadline_s=getattr(args, "deadline_s", None),
            classic=getattr(args, "classic", False),
            noise=getattr(args, "noise", False),
            lenient=getattr(args, "lenient", False),
            qa_faults=getattr(args, "qa_faults", None),
            fault_seed=getattr(args, "fault_seed", None),
            qa_retries=getattr(args, "qa_retries", 4),
            qa_deadline_us=getattr(args, "qa_deadline_us", None),
            qa_budget_us=getattr(args, "qa_budget_us", None),
            qa_breaker_threshold=getattr(args, "qa_breaker_threshold", 5),
            no_resilience=getattr(args, "no_resilience", False),
            engine=getattr(args, "engine", "reference"),
            fleet=getattr(args, "qa_fleet", 0),
            fleet_hedge_us=getattr(args, "qa_hedge_us", None),
            topology=getattr(args, "topology", None),
            grid=getattr(args, "grid", None),
            checkpoint_every=getattr(args, "checkpoint_every", 0),
        )
    except ValueError as error:
        raise SystemExit(str(error))


def _emit_observability(observability, args: argparse.Namespace) -> None:
    """Close the bundle and write/print whatever was requested.

    Called on the normal path *and* from the KeyboardInterrupt
    handlers, so an interrupted run still flushes a valid (partial)
    trace and metrics export.
    """
    if observability is None:
        return
    observability.close()
    if getattr(args, "trace", None):
        print(f"c trace={args.trace}")
    if getattr(args, "profile", False):
        from repro.observability import profile_rows

        for row in profile_rows(observability.metrics):
            print(
                f"c profile phase={row['phase']} count={row['count']} "
                f"total_s={row['total_s']} mean_ms={row['mean_ms']}"
            )
    if getattr(args, "metrics", None):
        registry = observability.metrics
        if args.metrics_format == "json":
            text = registry.dump_json() + "\n"
        else:
            text = registry.to_prometheus()
        with open(args.metrics, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"c metrics={args.metrics} format={args.metrics_format}")


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.sat import read_dimacs, to_3sat
    from repro.service import build_solver

    formula = read_dimacs(args.path, strict=not args.lenient)
    if not formula.is_3sat:
        print(f"reducing {formula.max_clause_size}-SAT input to 3-SAT")
        formula = to_3sat(formula).formula

    observability = None
    if args.trace or args.profile or args.metrics:
        if args.classic:
            raise SystemExit(
                "--trace/--profile/--metrics instrument the hybrid solve "
                "loop and cannot be combined with --classic"
            )
        from repro.observability import Observability

        want_metrics = bool(args.profile or args.metrics)
        if args.trace:
            observability = Observability.tracing(
                args.trace, metrics=want_metrics
            )
        else:
            observability = Observability.profiling()

    spec = _jobspec_from_args(args, job_id=args.path, path=args.path)
    if args.checkpoint_every and not args.checkpoint_path:
        raise SystemExit("--checkpoint-every requires --checkpoint-path")
    solver = build_solver(
        spec,
        formula=formula,
        observability=observability,
        checkpoint_path=args.checkpoint_path,
    )

    start = time.perf_counter()
    try:
        result = solver.solve()
    except KeyboardInterrupt:
        elapsed = time.perf_counter() - start
        print()  # terminate the ^C line
        print(f"c interrupted wall_seconds={elapsed:.3f}")
        partial = getattr(solver, "hybrid_stats", None)
        if partial is not None:
            print(
                f"c partial qa_calls={partial.qa_calls} "
                f"qpu_time_us={partial.qpu_time_us:.1f} "
                f"qa_failures={partial.qa_failures} "
                f"breaker_state={partial.breaker_state}"
            )
        _emit_observability(observability, args)
        return 130
    elapsed = time.perf_counter() - start
    hybrid = getattr(result, "hybrid", None)

    print(f"s {result.status.value.upper()}")
    if result.model is not None:
        lits = " ".join(str(l.value) for l in result.model.as_literals())
        print(f"v {lits} 0")
    print(f"c iterations={result.stats.iterations} conflicts={result.stats.conflicts}")
    if hybrid is not None:
        print(
            f"c qa_calls={hybrid.qa_calls} qpu_time_us={hybrid.qpu_time_us:.1f} "
            f"avg_embedded={hybrid.avg_embedded_clauses:.1f}"
        )
        print(
            f"c cdcl_propagations_per_s={hybrid.cdcl_propagations_per_s:.0f} "
            f"cdcl_conflicts_per_s={hybrid.cdcl_conflicts_per_s:.0f} "
            f"engine={spec.engine}"
        )
        print(
            f"c frontend_cache_hits={hybrid.frontend_cache_hits} "
            f"frontend_cache_misses={hybrid.frontend_cache_misses} "
            f"hit_rate={hybrid.frontend_cache_hit_rate:.2f}"
        )
        print(
            f"c qa_retries={hybrid.qa_retries} qa_failures={hybrid.qa_failures} "
            f"qa_availability={hybrid.qa_availability:.2f} "
            f"breaker_state={hybrid.breaker_state} "
            f"qa_budget_spent_us={hybrid.qa_budget_spent_us:.1f}"
        )
        if hybrid.degraded:
            print(f"c degraded_to_cdcl reason={hybrid.degraded_reason}")
        if hybrid.qa_fault_counts:
            faults_joined = " ".join(
                f"{name}={count}"
                for name, count in sorted(hybrid.qa_fault_counts.items())
            )
            print(f"c qa_faults {faults_joined}")
    print(f"c wall_seconds={elapsed:.3f}")

    _emit_observability(observability, args)
    return 0 if result.status.value != "unknown" else 1


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.benchgen import BENCHMARKS
    from repro.sat import to_dimacs

    if args.benchmark not in BENCHMARKS:
        print(f"unknown benchmark {args.benchmark!r}; known: {', '.join(BENCHMARKS)}")
        return 2
    spec = BENCHMARKS[args.benchmark]
    formula = spec.generate(args.index, seed=args.seed)
    text = to_dimacs(
        formula,
        comments=[
            f"{spec.name} ({spec.domain}), problem {args.index}, seed {args.seed}",
            "generated by the HyQSAT reproduction benchgen",
        ],
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {formula.num_vars} vars / {formula.num_clauses} clauses to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_embed(args: argparse.Namespace) -> int:
    from repro.embedding import (
        HyQSatEmbedder,
        MinorminerLikeEmbedder,
        PlaceAndRouteEmbedder,
    )
    from repro.qubo import encode_formula
    from repro.sat import read_dimacs, to_3sat
    from repro.topology import ChimeraGraph

    formula = read_dimacs(args.path, strict=not args.lenient)
    if not formula.is_3sat:
        formula = to_3sat(formula).formula
    hardware = ChimeraGraph(args.grid, args.grid, 4)
    encoding = encode_formula(list(formula.clauses), formula.num_vars)

    if args.scheme == "hyqsat":
        result = HyQSatEmbedder(hardware).embed(encoding)
        embedded = result.num_embedded
    else:
        from repro.embedding import EmbeddingTimeout

        edges = list(encoding.objective.quadratic.keys())
        variables = encoding.objective.variables
        embedder = (
            MinorminerLikeEmbedder(hardware, timeout_seconds=args.timeout)
            if args.scheme == "minorminer"
            else PlaceAndRouteEmbedder(hardware, timeout_seconds=args.timeout)
        )
        try:
            result = embedder.embed(edges, variables)
        except EmbeddingTimeout as timeout:
            print(
                f"scheme={args.scheme} timeout after {timeout.passes} "
                f"pass(es) / {timeout.elapsed_seconds:.2f}s "
                f"(budget {args.timeout:.3g}s)"
            )
            return 1
        embedded = formula.num_clauses if result.success else 0
    print(
        f"scheme={args.scheme} success={result.success} "
        f"embedded_clauses={embedded}/{formula.num_clauses} "
        f"avg_chain={result.avg_chain_length:.2f} max_chain={result.max_chain_length} "
        f"time={result.elapsed_seconds * 1e3:.2f}ms"
    )
    return 0


def _suite_cell(benchmark: str, index: int, seed: int) -> float:
    """One suite table cell: the classic/HyQSAT iteration ratio.

    Module-level and picklable so ``suite --jobs N --pool process``
    can ship cells to worker processes; seeding matches the serial
    path exactly (base seeded by ``--seed``, HyQSAT by the problem
    index), so parallel and serial tables are identical.
    """
    from repro.benchgen import BENCHMARKS
    from repro.cdcl import minisat_solver
    from repro.core import HyQSatConfig, HyQSatSolver

    spec = BENCHMARKS[benchmark]
    formula = spec.generate(index, seed=seed)
    base = minisat_solver(formula, seed=seed).solve()
    hyq = HyQSatSolver(formula, config=HyQSatConfig(seed=index)).solve()
    return max(1, base.stats.iterations) / max(1, hyq.stats.iterations)


def _cmd_suite(args: argparse.Namespace) -> int:
    from repro.analysis import format_table, reduction_stats
    from repro.benchgen import BENCHMARKS
    from repro.service import WorkerPool

    names = args.benchmarks.split(",") if args.benchmarks else list(BENCHMARKS)
    cells: List[tuple] = []
    counts: dict = {}
    for name in names:
        spec = BENCHMARKS[name.strip()]
        count = args.problems or min(3, spec.num_problems)
        counts[name.strip()] = count
        for index in range(count):
            cells.append((name.strip(), index))

    mode = "inline" if args.jobs <= 1 else args.pool
    pool = WorkerPool(workers=max(1, args.jobs), mode=mode)
    completed: dict = {}
    interrupted = False
    try:
        futures = {
            cell: pool.submit(_suite_cell, cell[0], cell[1], args.seed)
            for cell in cells
        }
        for cell, future in futures.items():
            completed[cell] = future.result()
    except KeyboardInterrupt:
        interrupted = True
        pool.shutdown(wait=False, cancel_pending=True)
    else:
        pool.shutdown(wait=True)

    rows: List[List[object]] = []
    for name in names:
        name = name.strip()
        reductions = [
            completed[(name, index)]
            for index in range(counts[name])
            if (name, index) in completed
        ]
        if not reductions:
            continue
        stats = reduction_stats(reductions)
        rows.append([name, BENCHMARKS[name].domain, len(reductions)] + stats.as_row())
    if interrupted:
        print()
        print(
            f"c interrupted after {len(completed)}/{len(cells)} problems; "
            "partial table follows"
        )
    if rows:
        print(
            format_table(
                ["Benchmark", "Domain", "#Problems", "Avg", "Geomean", "Max", "Min"],
                rows,
                title="Iteration reduction (classic CDCL / HyQSAT)",
            )
        )
    return 130 if interrupted else 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.analysis.trace_report import main as report_main

    return report_main([args.path])


# ---------------------------------------------------------------------------
# Service commands (docs/SERVICE.md)
# ---------------------------------------------------------------------------


def _service_observability(args: argparse.Namespace):
    """The service-level tracing/metrics bundle for serve/batch."""
    if not (getattr(args, "trace", None) or getattr(args, "metrics", None)):
        return None
    from repro.observability import Observability

    if args.trace:
        return Observability.tracing(args.trace, metrics=bool(args.metrics))
    return Observability.profiling()


def _run_service(args: argparse.Namespace, specs) -> int:
    """Shared serve/batch driver: run ``specs`` through a
    :class:`~repro.service.SolverService`, streaming result JSONL."""
    from repro.service import ServiceConfig, SolverService

    observability = _service_observability(args)
    out = sys.stdout if args.output in (None, "-") else open(
        args.output, "w", encoding="utf-8"
    )
    owns_out = out is not sys.stdout

    def emit(outcome) -> None:
        out.write(outcome.to_json() + "\n")
        out.flush()

    service = SolverService(
        ServiceConfig(
            workers=max(1, args.jobs),
            pool_mode=args.pool,
            max_depth=args.max_depth,
            qpu_budget_us=args.qpu_budget_us,
            dedup=not args.no_dedup,
            journal_path=args.journal,
            checkpoint_dir=args.checkpoint_dir,
            store_max_entries=args.store_cap or None,
            cache_path=None if args.no_cache else args.cache_db,
            cache_cap=args.cache_cap,
            cache_ttl_s=args.cache_ttl_s,
        ),
        observability=observability,
    )
    interrupted = False
    outcomes = []
    try:
        outcomes = service.run(specs, on_outcome=emit)
    except KeyboardInterrupt:
        interrupted = True
    finally:
        if owns_out:
            out.close()
    stats = service.stats
    summary = sys.stderr
    if stats is not None:
        states = " ".join(
            f"{state}={count}"
            for state, count in sorted(stats.jobs_by_state.items())
        )
        print(
            f"c jobs={stats.total_jobs} {states} dedup_hits={stats.dedup_hits}",
            file=summary,
        )
        print(
            f"c qpu_grants={stats.qpu_grants} "
            f"qpu_coalesced={stats.qpu_coalesced} "
            f"qpu_busy_us={stats.qpu_busy_us:.1f} "
            f"wall_seconds={stats.wall_seconds:.3f}",
            file=summary,
        )
        if service.cache is not None:
            print(
                f"c cache_hits={stats.cache_hits} "
                f"cache_misses={stats.cache_misses} "
                f"cache_subsumption_hits={stats.cache_subsumption_hits} "
                f"cache_warm_starts={stats.cache_warm_starts}",
                file=summary,
            )
    if interrupted:
        print("c interrupted; results flushed so far are valid", file=summary)
    _emit_observability(observability, args)
    if interrupted:
        return 130
    bad_states = {"failed", "rejected", "expired"}
    bad = sum(
        1
        for o in outcomes
        if o.state in bad_states or o.status == "unknown"
    )
    return 1 if bad else 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import os

    stem = os.path.splitext(os.path.basename(args.path))[0]
    job_id = args.id or f"{stem}-s{args.seed}"
    spec = _jobspec_from_args(args, job_id=job_id, path=args.path)
    line = spec.to_json()
    if args.queue in (None, "-"):
        print(line)
    else:
        with open(args.queue, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        print(f"c queued {job_id} -> {args.queue}")
    return 0


def _load_job_lines(source: str) -> List[str]:
    """Job JSONL lines from a file, every ``*.jsonl`` in a directory
    (sorted), or stdin (``-``)."""
    import glob
    import os

    if source == "-":
        return sys.stdin.read().splitlines()
    if os.path.isdir(source):
        lines: List[str] = []
        for path in sorted(glob.glob(os.path.join(source, "*.jsonl"))):
            with open(path, "r", encoding="utf-8") as handle:
                lines.extend(handle.read().splitlines())
        return lines
    with open(source, "r", encoding="utf-8") as handle:
        return handle.read().splitlines()


def _cmd_serve(args: argparse.Namespace) -> int:
    import os

    from repro.service import JobSpec

    lines = _load_job_lines(args.source)
    base = (
        None
        if args.source == "-"
        else (
            args.source
            if os.path.isdir(args.source)
            else os.path.dirname(args.source)
        )
    )
    specs = []
    for number, line in enumerate(lines, start=1):
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        try:
            spec = JobSpec.from_json(line)
        except (ValueError, TypeError) as error:
            raise SystemExit(f"{args.source}:{number}: {error}")
        if spec.path and base and not os.path.isabs(spec.path):
            spec.path = os.path.join(base, spec.path)
        specs.append(spec)
    if not specs:
        print("c no jobs", file=sys.stderr)
        return 0
    return _run_service(args, specs)


def _cmd_batch(args: argparse.Namespace) -> int:
    import glob
    import os

    paths = sorted(glob.glob(os.path.join(args.directory, "*.cnf")))
    if not paths:
        raise SystemExit(f"no *.cnf files under {args.directory}")
    specs = []
    for index, path in enumerate(paths):
        stem = os.path.splitext(os.path.basename(path))[0]
        specs.append(
            _jobspec_from_args(
                args, job_id=stem, path=path, seed=args.seed + index
            )
        )
    return _run_service(args, specs)


# ---------------------------------------------------------------------------
# Cache maintenance commands (docs/SERVICE.md, "Result cache")
# ---------------------------------------------------------------------------


def _open_cache(args: argparse.Namespace):
    import os

    from repro.cache import PersistentResultStore

    if not os.path.exists(args.db):
        raise SystemExit(f"no cache database at {args.db}")
    return PersistentResultStore(args.db)


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    import json as json_module

    store = _open_cache(args)
    try:
        info = store.describe()
    finally:
        store.close()
    if args.json:
        print(json_module.dumps(info, sort_keys=True))
    else:
        for key in (
            "path", "results", "instances", "clause_banks",
            "lifetime_hits", "db_bytes", "max_entries", "ttl_s",
        ):
            print(f"c {key}={info[key]}")
    return 0


def _cmd_cache_gc(args: argparse.Namespace) -> int:
    store = _open_cache(args)
    try:
        dropped = store.gc(max_entries=args.cap, ttl_s=args.ttl_s)
        remaining = store.entry_count()
    finally:
        store.close()
    print(f"c evicted={dropped} remaining={remaining}")
    return 0


def _cmd_cache_export(args: argparse.Namespace) -> int:
    import json as json_module

    store = _open_cache(args)
    out = sys.stdout if args.output in (None, "-") else open(
        args.output, "w", encoding="utf-8"
    )
    rows = 0
    try:
        for row in store.export_rows():
            out.write(json_module.dumps(row, sort_keys=True) + "\n")
            rows += 1
    finally:
        store.close()
        if out is not sys.stdout:
            out.close()
    print(f"c exported={rows}", file=sys.stderr)
    return 0


# ---------------------------------------------------------------------------
# Gateway commands (docs/GATEWAY.md)
# ---------------------------------------------------------------------------


def _cmd_gateway(args: argparse.Namespace) -> int:
    import asyncio

    from repro.gateway import GatewayConfig, GatewayServer

    observability = _service_observability(args)
    try:
        config = GatewayConfig(
            host=args.host,
            port=args.port,
            workers=max(1, args.jobs),
            max_depth=args.max_depth,
            fleet=args.fleet,
            rate_per_s=args.rate_per_s,
            burst=args.burst,
            tenant_budget_us=args.tenant_budget_us,
            api_keys=tuple(
                key for key in (args.api_keys or "").split(",") if key
            ),
            retry_after_s=args.retry_after_s,
            drain_grace_s=args.drain_grace_s,
            qpu_budget_us=args.qpu_budget_us,
            cache_db=args.cache_db,
            cache_cap=args.cache_cap,
        )
        server = GatewayServer(config, observability=observability)
    except ValueError as error:
        raise SystemExit(str(error))

    async def _serve() -> None:
        import signal

        await server.start()
        fleet = ",".join(
            f"{q.topology}:{q.grid}" for q in server.fleet
        )
        print(
            f"c gateway listening on {config.host}:{server.port} "
            f"fleet={fleet} workers={config.workers}",
            flush=True,
        )
        # The drain must run on the loop that owns the server's tasks,
        # so SIGINT/SIGTERM flip an event here instead of raising
        # KeyboardInterrupt out of asyncio.run (which would close this
        # loop with the dispatcher still bound to it).
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()

        def _request_drain() -> None:
            stop.set()
            # Restore default handling: a second interrupt abandons
            # the drain via KeyboardInterrupt.
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.remove_signal_handler(signum)
                except (NotImplementedError, RuntimeError):
                    pass

        handled = True
        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(signum, _request_drain)
        except NotImplementedError:  # platforms without loop signals
            handled = False
        serve_task = loop.create_task(server.serve_forever())
        if handled:
            await stop.wait()
            await server.shutdown()  # closes the listener; serve_task ends
        await serve_task

    try:
        asyncio.run(_serve())
        states = " ".join(
            f"{state}={count}"
            for state, count in sorted(server.stats.jobs.items())
        )
        print(
            f"c gateway drained connections={server.stats.connections} "
            f"{states}".rstrip(),
            file=sys.stderr,
        )
    except KeyboardInterrupt:
        # Second interrupt mid-drain (or no signal-handler support):
        # abandon the drain and exit without the summary.
        print("c gateway interrupted, drain abandoned", file=sys.stderr)
    _emit_observability(observability, args)
    return 0


def _cmd_connect(args: argparse.Namespace) -> int:
    import json
    import os

    from repro.gateway import GatewayClient, GatewayError, GatewayReject

    try:
        client = GatewayClient(
            host=args.host,
            port=args.port,
            api_key=args.api_key,
            timeout_s=args.timeout_s,
        )
    except (GatewayError, OSError) as error:
        print(f"c connect failed: {error}", file=sys.stderr)
        return 2
    out = sys.stdout if args.output in (None, "-") else open(
        args.output, "w", encoding="utf-8"
    )
    owns_out = out is not sys.stdout
    code = 0
    try:
        with client:
            if args.ping:
                pong = client.ping()
                print(f"c pong nonce={pong.get('nonce')}")
                return 0
            if args.cancel:
                try:
                    message = client.cancel(args.cancel)
                    print(f"c cancelled {message.get('id')}")
                except GatewayReject as reject:
                    print(f"c reject {reject}", file=sys.stderr)
                    return 1
                return 0
            if not args.paths:
                raise SystemExit("connect: no CNF files given")
            submitted = []
            for index, path in enumerate(args.paths):
                with open(path, "r", encoding="utf-8") as handle:
                    dimacs = handle.read()
                stem = os.path.splitext(os.path.basename(path))[0]
                seed = args.seed + index
                spec = _jobspec_from_args(
                    args, job_id=f"{stem}-s{seed}", dimacs=dimacs, seed=seed
                )
                job = json.loads(spec.to_json())
                try:
                    ack = client.submit(job)
                    print(
                        f"c ack id={ack['id']} queue_depth={ack['queue_depth']}",
                        file=sys.stderr,
                    )
                    submitted.append(spec.job_id)
                except GatewayReject as reject:
                    hint = (
                        f" retry_after_s={reject.retry_after_s}"
                        if reject.retry_after_s is not None
                        else ""
                    )
                    print(f"c reject {reject}{hint}", file=sys.stderr)
                    code = 1

            def show(message) -> None:
                if message["type"] == "event":
                    attrs = " ".join(
                        f"{k}={v}"
                        for k, v in sorted(message.get("attrs", {}).items())
                    )
                    print(
                        f"c event id={message['id']} {message['event']} "
                        f"{attrs}".rstrip(),
                        file=sys.stderr,
                    )

            results = client.drain(submitted, on_message=show) if submitted else {}
            for job_id in submitted:
                outcome = results.get(job_id, {})
                line = dict(outcome)
                line["id"] = line.pop("job_id", job_id)
                out.write(json.dumps(line, sort_keys=True) + "\n")
                out.flush()
                if outcome.get("state") != "done" or outcome.get("status") == "unknown":
                    code = 1
    except GatewayError as error:
        print(f"c gateway error: {error}", file=sys.stderr)
        code = 2
    except KeyboardInterrupt:
        print("c interrupted", file=sys.stderr)
        code = 130
    finally:
        if owns_out:
            out.close()
    return code


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


def _add_job_option_flags(parser: argparse.ArgumentParser) -> None:
    """The solve-option flags shared by ``solve``/``submit``/``batch``
    (one flag set -> one :class:`~repro.service.JobSpec` field each)."""
    parser.add_argument("--classic", action="store_true", help="plain CDCL baseline")
    parser.add_argument("--noise", action="store_true", help="noisy 2000Q device model")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--lenient", action="store_true", help="tolerate malformed DIMACS")
    parser.add_argument(
        "--engine",
        choices=["reference", "fast"],
        default="reference",
        help="CDCL engine: pure-Python reference or the bit-identical "
        "native kernel (falls back to reference without a C compiler)",
    )
    parser.add_argument(
        "--qa-faults",
        default=None,
        metavar="SPEC",
        help="inject device faults: a probability for all channels "
        "(e.g. 0.2) or key=prob pairs over prog,timeout,dropout,drift "
        "(e.g. prog=0.1,timeout=0.05)",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="fault-injection RNG seed (defaults to --seed)",
    )
    parser.add_argument(
        "--qa-retries", type=int, default=4, help="max attempts per QA call"
    )
    parser.add_argument(
        "--qa-deadline-us",
        type=float,
        default=None,
        help="per-call deadline in modelled device microseconds",
    )
    parser.add_argument(
        "--qa-budget-us",
        type=float,
        default=None,
        help="global QA time budget in modelled device microseconds",
    )
    parser.add_argument(
        "--qa-breaker-threshold",
        type=int,
        default=5,
        help="consecutive failed calls before the circuit breaker opens",
    )
    parser.add_argument(
        "--no-resilience",
        action="store_true",
        help="call the (possibly faulty) device bare, without the "
        "retry/breaker proxy",
    )
    parser.add_argument(
        "--topology",
        choices=["chimera", "pegasus"],
        default=None,
        help="QA hardware topology (default: chimera; pegasus adds "
        "odd + cross-cell couplers for shorter chains)",
    )
    parser.add_argument(
        "--grid",
        type=int,
        default=None,
        metavar="N",
        help="hardware grid size, N x N cells (default: 16, the "
        "D-Wave 2000Q scale)",
    )
    _add_durability_flags(parser)


def _add_durability_flags(parser: argparse.ArgumentParser) -> None:
    """Failover/checkpoint job flags (docs/SERVICE.md, durability)."""
    parser.add_argument(
        "--qa-fleet",
        type=int,
        default=0,
        metavar="N",
        help="anneal on a fleet of N health-tracked devices with "
        "failover and quarantine instead of a single device (0 = off)",
    )
    parser.add_argument(
        "--qa-hedge-us",
        type=float,
        default=None,
        metavar="US",
        help="hedge fleet calls slower than this many modelled "
        "microseconds onto a backup device (requires --qa-fleet >= 2)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="checkpoint the search every N conflicts after warm-up so "
        "a killed solve resumes mid-search (0 = off)",
    )


def _add_service_flags(parser: argparse.ArgumentParser) -> None:
    """Service-runtime flags shared by ``serve`` and ``batch``."""
    from repro.service.service import DEFAULT_STORE_CAP

    parser.add_argument(
        "--jobs", type=int, default=1, help="concurrent worker slots"
    )
    parser.add_argument(
        "--pool",
        choices=["thread", "process", "inline"],
        default="thread",
        help="worker pool mode (process replays QPU accounting; "
        "see docs/SERVICE.md)",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="result JSONL destination (default stdout)",
    )
    parser.add_argument(
        "--no-dedup",
        action="store_true",
        help="disable canonical-CNF result deduplication",
    )
    parser.add_argument(
        "--max-depth",
        type=int,
        default=None,
        help="queue admission cap (jobs beyond it are rejected)",
    )
    parser.add_argument(
        "--qpu-budget-us",
        type=float,
        default=None,
        help="shared modelled-microsecond budget across every job's QA calls",
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="FILE",
        help="crash-safe write-ahead job journal; re-running the same "
        "command replays acked results instead of re-solving them",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="directory for per-job mid-search checkpoints (jobs with "
        "--checkpoint-every > 0 resume from here after a crash)",
    )
    parser.add_argument(
        "--store-cap",
        type=int,
        default=DEFAULT_STORE_CAP,
        metavar="N",
        help="LRU cap on cached in-memory dedup results "
        f"(default {DEFAULT_STORE_CAP}, from ServiceConfig; 0 = unbounded)",
    )
    parser.add_argument(
        "--cache-db",
        default=None,
        metavar="FILE",
        help="persistent result cache (SQLite, survives restarts): "
        "exact hits replay bit-identically, subsumption hits "
        "re-validate cached models, near-misses warm-start from "
        "banked learned clauses (docs/SERVICE.md)",
    )
    parser.add_argument(
        "--cache-cap",
        type=int,
        default=None,
        metavar="N",
        help="LRU cap on exact-result rows in --cache-db "
        "(default unbounded)",
    )
    parser.add_argument(
        "--cache-ttl-s",
        type=float,
        default=None,
        metavar="S",
        help="expire --cache-db rows not hit for S seconds "
        "(default never)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore --cache-db (run with the in-memory store only)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a JSONL trace of the service run (service.* spans)",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="export the service metrics registry to FILE",
    )
    parser.add_argument(
        "--metrics-format",
        choices=["prom", "json"],
        default="prom",
        help="metrics export format (default: prom)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="hyqsat", description="HyQSAT hybrid QA+CDCL solver (HPCA'23 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve a DIMACS CNF file")
    p_solve.add_argument("path")
    _add_job_option_flags(p_solve)
    p_solve.add_argument(
        "--checkpoint-path",
        default=None,
        metavar="FILE",
        help="checkpoint file for --checkpoint-every; a valid "
        "checkpoint there resumes the solve mid-search",
    )
    p_solve.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a JSONL span/event trace of the solve "
        "(schema: docs/TELEMETRY.md; summarise with 'hyqsat trace-report')",
    )
    p_solve.add_argument(
        "--profile",
        action="store_true",
        help="collect per-phase latency metrics and print a profile "
        "summary after the solve",
    )
    p_solve.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="export the solve's metrics registry to FILE",
    )
    p_solve.add_argument(
        "--metrics-format",
        choices=["prom", "json"],
        default="prom",
        help="metrics export format: Prometheus text or JSON "
        "(default: prom)",
    )
    p_solve.set_defaults(func=_cmd_solve)

    p_gen = sub.add_parser("generate", help="generate a benchmark instance")
    p_gen.add_argument("benchmark")
    p_gen.add_argument("--index", type=int, default=0)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("-o", "--output", default=None)
    p_gen.set_defaults(func=_cmd_generate)

    p_embed = sub.add_parser("embed", help="embed a CNF onto Chimera hardware")
    p_embed.add_argument("path")
    p_embed.add_argument(
        "--scheme", choices=["hyqsat", "minorminer", "pr"], default="hyqsat"
    )
    p_embed.add_argument("--grid", type=int, default=16)
    p_embed.add_argument("--timeout", type=float, default=60.0)
    p_embed.add_argument("--lenient", action="store_true")
    p_embed.set_defaults(func=_cmd_embed)

    p_suite = sub.add_parser("suite", help="run a Table I slice")
    p_suite.add_argument("--benchmarks", default="")
    p_suite.add_argument("--problems", type=int, default=0)
    p_suite.add_argument("--seed", type=int, default=0)
    p_suite.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="solve suite problems on N service workers (1 = serial)",
    )
    p_suite.add_argument(
        "--pool",
        choices=["thread", "process", "inline"],
        default="thread",
        help="worker pool mode for --jobs > 1",
    )
    p_suite.set_defaults(func=_cmd_suite)

    p_report = sub.add_parser(
        "trace-report", help="summarise a --trace JSONL file"
    )
    p_report.add_argument("path")
    p_report.set_defaults(func=_cmd_trace_report)

    p_submit = sub.add_parser(
        "submit", help="append one job line to a job JSONL file"
    )
    p_submit.add_argument("path", help="DIMACS CNF instance")
    p_submit.add_argument(
        "--id", default=None, help="job id (default: <stem>-s<seed>)"
    )
    p_submit.add_argument(
        "--queue",
        default=None,
        metavar="FILE",
        help="job JSONL file to append to (default stdout)",
    )
    p_submit.add_argument(
        "--priority",
        choices=["interactive", "batch", "background"],
        default="batch",
        help="priority class (strict between classes, FIFO within)",
    )
    p_submit.add_argument(
        "--deadline-s",
        type=float,
        default=None,
        help="queue deadline in seconds; jobs still queued past it expire",
    )
    _add_job_option_flags(p_submit)
    p_submit.set_defaults(func=_cmd_submit)

    p_serve = sub.add_parser(
        "serve", help="run job JSONL through the solver service"
    )
    p_serve.add_argument(
        "source", help="job JSONL file, directory of *.jsonl, or - for stdin"
    )
    _add_service_flags(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_gateway = sub.add_parser(
        "gateway",
        help="serve the solver over TCP (JSONL protocol; docs/GATEWAY.md)",
    )
    p_gateway.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    p_gateway.add_argument(
        "--port",
        type=int,
        default=7465,
        help="bind port (0 = pick an ephemeral port, printed at start)",
    )
    p_gateway.add_argument(
        "--jobs", type=int, default=2, help="concurrent solver workers"
    )
    p_gateway.add_argument(
        "--max-depth",
        type=int,
        default=64,
        help="admission queue cap; beyond it submissions are rejected "
        "with backpressure + retry-after",
    )
    p_gateway.add_argument(
        "--fleet",
        default="chimera:16",
        metavar="SPEC",
        help="heterogeneous QPU fleet as topology:grid atoms, e.g. "
        "'chimera:8,chimera:16,pegasus:8' (default chimera:16)",
    )
    p_gateway.add_argument(
        "--rate-per-s",
        type=float,
        default=20.0,
        help="per-tenant steady-state submissions per second",
    )
    p_gateway.add_argument(
        "--burst",
        type=int,
        default=40,
        help="per-tenant token-bucket burst capacity",
    )
    p_gateway.add_argument(
        "--tenant-budget-us",
        type=float,
        default=None,
        help="per-tenant QA quota in modelled device microseconds "
        "(default unmetered)",
    )
    p_gateway.add_argument(
        "--api-keys",
        default=None,
        metavar="K1,K2",
        help="comma-separated accepted API keys; omit for an open "
        "gateway (anonymous tenant)",
    )
    p_gateway.add_argument(
        "--retry-after-s",
        type=float,
        default=None,
        help="fixed retry-after hint on rejections (default: estimated "
        "from queue depth and recent run times)",
    )
    p_gateway.add_argument(
        "--drain-grace-s",
        type=float,
        default=30.0,
        help="seconds to let queued and running jobs finish at shutdown",
    )
    p_gateway.add_argument(
        "--qpu-budget-us",
        type=float,
        default=None,
        help="per-device modelled QPU budget shared by that device's jobs",
    )
    p_gateway.add_argument(
        "--cache-db",
        default=None,
        metavar="FILE",
        help="persistent result cache shared across restarts and "
        "gateway processes (SQLite; see docs/SERVICE.md)",
    )
    p_gateway.add_argument(
        "--cache-cap",
        type=int,
        default=None,
        metavar="N",
        help="LRU cap on exact-result rows in --cache-db "
        "(default unbounded)",
    )
    p_gateway.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a JSONL trace of gateway sessions (gateway.session spans)",
    )
    p_gateway.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="export the gateway metrics registry to FILE at shutdown",
    )
    p_gateway.add_argument(
        "--metrics-format",
        choices=["prom", "json"],
        default="prom",
        help="metrics export format (default: prom)",
    )
    p_gateway.set_defaults(func=_cmd_gateway)

    p_connect = sub.add_parser(
        "connect",
        help="submit CNF files to a running gateway and stream results",
    )
    p_connect.add_argument(
        "paths", nargs="*", help="DIMACS CNF files (one job each)"
    )
    p_connect.add_argument(
        "--host", default="127.0.0.1", help="gateway address"
    )
    p_connect.add_argument("--port", type=int, default=7465, help="gateway port")
    p_connect.add_argument(
        "--api-key", default=None, help="tenant API key for the hello"
    )
    p_connect.add_argument(
        "--timeout-s",
        type=float,
        default=300.0,
        help="socket timeout while waiting for results",
    )
    p_connect.add_argument(
        "--priority",
        choices=["interactive", "batch", "background"],
        default="batch",
        help="priority class for submitted jobs",
    )
    p_connect.add_argument(
        "--deadline-s",
        type=float,
        default=None,
        help="queue deadline; jobs still queued past it expire",
    )
    p_connect.add_argument(
        "--cancel",
        default=None,
        metavar="ID",
        help="cancel a queued job by id instead of submitting",
    )
    p_connect.add_argument(
        "--ping",
        action="store_true",
        help="liveness check: send ping, print the pong, exit",
    )
    p_connect.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="result JSONL destination (default stdout)",
    )
    _add_job_option_flags(p_connect)
    p_connect.set_defaults(func=_cmd_connect)

    p_batch = sub.add_parser(
        "batch", help="solve every *.cnf in a directory via the service"
    )
    p_batch.add_argument("directory")
    p_batch.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed base: instance i gets seed+i",
    )
    p_batch.add_argument("--classic", action="store_true", help="plain CDCL baseline")
    p_batch.add_argument("--noise", action="store_true", help="noisy 2000Q device model")
    p_batch.add_argument("--lenient", action="store_true", help="tolerate malformed DIMACS")
    p_batch.add_argument(
        "--engine",
        choices=["reference", "fast"],
        default="reference",
        help="CDCL engine: pure-Python reference or the bit-identical "
        "native kernel (falls back to reference without a C compiler)",
    )
    _add_durability_flags(p_batch)
    _add_service_flags(p_batch)
    p_batch.set_defaults(func=_cmd_batch)

    p_cache = sub.add_parser(
        "cache",
        help="inspect or maintain a persistent result cache "
        "(docs/SERVICE.md)",
    )
    cache_sub = p_cache.add_subparsers(dest="cache_command", required=True)
    p_cstats = cache_sub.add_parser(
        "stats", help="print cache size, hit counts, and policy"
    )
    p_cstats.add_argument("db", help="cache SQLite file (--cache-db value)")
    p_cstats.add_argument(
        "--json", action="store_true", help="emit one JSON object"
    )
    p_cstats.set_defaults(func=_cmd_cache_stats)
    p_cgc = cache_sub.add_parser(
        "gc", help="apply LRU/TTL eviction now and drop orphan rows"
    )
    p_cgc.add_argument("db", help="cache SQLite file")
    p_cgc.add_argument(
        "--cap",
        type=int,
        default=None,
        metavar="N",
        help="evict down to at most N exact-result rows",
    )
    p_cgc.add_argument(
        "--ttl-s",
        type=float,
        default=None,
        metavar="S",
        help="evict rows not hit within the last S seconds",
    )
    p_cgc.set_defaults(func=_cmd_cache_gc)
    p_cexport = cache_sub.add_parser(
        "export", help="dump every cached result as JSONL"
    )
    p_cexport.add_argument("db", help="cache SQLite file")
    p_cexport.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="JSONL destination (default stdout)",
    )
    p_cexport.set_defaults(func=_cmd_cache_export)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
