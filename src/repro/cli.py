"""Command-line interface.

Subcommands::

    hyqsat solve <file.cnf> [--classic] [--noise] [--seed N]
                 [--qa-faults SPEC] [--qa-retries N] [--qa-budget-us T]
                 [--trace FILE] [--profile] [--metrics FILE]
    hyqsat generate <benchmark> [--index I] [--seed N] [-o out.cnf]
    hyqsat embed <file.cnf> [--scheme hyqsat|minorminer|pr] [--grid N]
    hyqsat suite [--benchmarks GC1,AI1,...] [--problems N]
    hyqsat trace-report <trace.jsonl>

``solve`` runs HyQSAT (or the classic CDCL baseline) on a DIMACS file;
``generate`` materialises a benchmark instance; ``embed`` reports
embedding statistics; ``suite`` reproduces a small Table I slice;
``trace-report`` summarises a ``--trace`` JSONL file.  The solve-time
observability flags (``--trace``, ``--profile``, ``--metrics``) are
documented in docs/TELEMETRY.md.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

import numpy as np


def _parse_fault_spec(text: str):
    """Parse ``--qa-faults``: a bare probability applies to every
    channel; ``key=value`` pairs (comma-separated) set channels
    individually — keys: ``prog``, ``timeout``, ``dropout``, ``drift``.
    """
    from repro.annealer import FaultModel

    try:
        return FaultModel.uniform(float(text))
    except ValueError:
        pass
    keys = {
        "prog": "programming_fail_prob",
        "timeout": "readout_timeout_prob",
        "dropout": "read_dropout_prob",
        "drift": "drift_onset_prob",
    }
    values = {}
    for part in text.split(","):
        if "=" not in part:
            raise SystemExit(
                f"bad --qa-faults entry {part!r}; expected key=prob with "
                f"keys {sorted(keys)}"
            )
        key, _, prob = part.partition("=")
        if key.strip() not in keys:
            raise SystemExit(
                f"unknown --qa-faults channel {key!r}; known: {sorted(keys)}"
            )
        values[keys[key.strip()]] = float(prob)
    return FaultModel(**values)


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.annealer import AnnealerDevice, NoiseModel
    from repro.cdcl import minisat_solver
    from repro.core import HyQSatConfig, HyQSatSolver, ResilienceConfig, RetryPolicy
    from repro.core.config import BreakerPolicy
    from repro.resilience import ResilientDevice
    from repro.sat import read_dimacs, to_3sat

    formula = read_dimacs(args.path, strict=not args.lenient)
    if not formula.is_3sat:
        print(f"reducing {formula.max_clause_size}-SAT input to 3-SAT")
        formula = to_3sat(formula).formula

    observability = None
    if args.trace or args.profile or args.metrics:
        if args.classic:
            raise SystemExit(
                "--trace/--profile/--metrics instrument the hybrid solve "
                "loop and cannot be combined with --classic"
            )
        from repro.observability import Observability

        want_metrics = bool(args.profile or args.metrics)
        if args.trace:
            observability = Observability.tracing(
                args.trace, metrics=want_metrics
            )
        else:
            observability = Observability.profiling()

    start = time.perf_counter()
    if args.classic:
        result = minisat_solver(formula, seed=args.seed).solve()
        hybrid = None
    else:
        noise = NoiseModel.dwave_2000q() if args.noise else NoiseModel.noiseless()
        faults = _parse_fault_spec(args.qa_faults) if args.qa_faults else None
        fault_seed = args.seed if args.fault_seed is None else args.fault_seed
        device = AnnealerDevice(
            noise=noise, seed=args.seed, faults=faults, fault_seed=fault_seed
        )
        if not args.no_resilience:
            device = ResilientDevice(
                device,
                ResilienceConfig(
                    retry=RetryPolicy(max_attempts=args.qa_retries),
                    breaker=BreakerPolicy(
                        failure_threshold=args.qa_breaker_threshold
                    ),
                    call_deadline_us=args.qa_deadline_us,
                    qa_budget_us=args.qa_budget_us,
                    seed=fault_seed,
                ),
            )
        solver = HyQSatSolver(
            formula,
            device=device,
            config=HyQSatConfig(seed=args.seed),
            observability=observability,
        )
        result = solver.solve()
        hybrid = result.hybrid
    elapsed = time.perf_counter() - start

    print(f"s {result.status.value.upper()}")
    if result.model is not None:
        lits = " ".join(str(l.value) for l in result.model.as_literals())
        print(f"v {lits} 0")
    print(f"c iterations={result.stats.iterations} conflicts={result.stats.conflicts}")
    if hybrid is not None:
        print(
            f"c qa_calls={hybrid.qa_calls} qpu_time_us={hybrid.qpu_time_us:.1f} "
            f"avg_embedded={hybrid.avg_embedded_clauses:.1f}"
        )
        print(
            f"c frontend_cache_hits={hybrid.frontend_cache_hits} "
            f"frontend_cache_misses={hybrid.frontend_cache_misses} "
            f"hit_rate={hybrid.frontend_cache_hit_rate:.2f}"
        )
        print(
            f"c qa_retries={hybrid.qa_retries} qa_failures={hybrid.qa_failures} "
            f"qa_availability={hybrid.qa_availability:.2f} "
            f"breaker_state={hybrid.breaker_state} "
            f"qa_budget_spent_us={hybrid.qa_budget_spent_us:.1f}"
        )
        if hybrid.degraded:
            print(f"c degraded_to_cdcl reason={hybrid.degraded_reason}")
        if hybrid.qa_fault_counts:
            faults_joined = " ".join(
                f"{name}={count}"
                for name, count in sorted(hybrid.qa_fault_counts.items())
            )
            print(f"c qa_faults {faults_joined}")
    print(f"c wall_seconds={elapsed:.3f}")

    if observability is not None:
        observability.close()
        if args.trace:
            print(f"c trace={args.trace}")
        if args.profile:
            from repro.observability import profile_rows

            for row in profile_rows(observability.metrics):
                print(
                    f"c profile phase={row['phase']} count={row['count']} "
                    f"total_s={row['total_s']} mean_ms={row['mean_ms']}"
                )
        if args.metrics:
            registry = observability.metrics
            if args.metrics_format == "json":
                text = registry.dump_json() + "\n"
            else:
                text = registry.to_prometheus()
            with open(args.metrics, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"c metrics={args.metrics} format={args.metrics_format}")
    return 0 if result.status.value != "unknown" else 1


def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.benchgen import BENCHMARKS
    from repro.sat import to_dimacs

    if args.benchmark not in BENCHMARKS:
        print(f"unknown benchmark {args.benchmark!r}; known: {', '.join(BENCHMARKS)}")
        return 2
    spec = BENCHMARKS[args.benchmark]
    formula = spec.generate(args.index, seed=args.seed)
    text = to_dimacs(
        formula,
        comments=[
            f"{spec.name} ({spec.domain}), problem {args.index}, seed {args.seed}",
            "generated by the HyQSAT reproduction benchgen",
        ],
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {formula.num_vars} vars / {formula.num_clauses} clauses to {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_embed(args: argparse.Namespace) -> int:
    from repro.embedding import (
        HyQSatEmbedder,
        MinorminerLikeEmbedder,
        PlaceAndRouteEmbedder,
    )
    from repro.qubo import encode_formula
    from repro.sat import read_dimacs, to_3sat
    from repro.topology import ChimeraGraph

    formula = read_dimacs(args.path, strict=not args.lenient)
    if not formula.is_3sat:
        formula = to_3sat(formula).formula
    hardware = ChimeraGraph(args.grid, args.grid, 4)
    encoding = encode_formula(list(formula.clauses), formula.num_vars)

    if args.scheme == "hyqsat":
        result = HyQSatEmbedder(hardware).embed(encoding)
        embedded = result.num_embedded
    else:
        from repro.embedding import EmbeddingTimeout

        edges = list(encoding.objective.quadratic.keys())
        variables = encoding.objective.variables
        embedder = (
            MinorminerLikeEmbedder(hardware, timeout_seconds=args.timeout)
            if args.scheme == "minorminer"
            else PlaceAndRouteEmbedder(hardware, timeout_seconds=args.timeout)
        )
        try:
            result = embedder.embed(edges, variables)
        except EmbeddingTimeout as timeout:
            print(
                f"scheme={args.scheme} timeout after {timeout.passes} "
                f"pass(es) / {timeout.elapsed_seconds:.2f}s "
                f"(budget {args.timeout:.3g}s)"
            )
            return 1
        embedded = formula.num_clauses if result.success else 0
    print(
        f"scheme={args.scheme} success={result.success} "
        f"embedded_clauses={embedded}/{formula.num_clauses} "
        f"avg_chain={result.avg_chain_length:.2f} max_chain={result.max_chain_length} "
        f"time={result.elapsed_seconds * 1e3:.2f}ms"
    )
    return 0


def _cmd_suite(args: argparse.Namespace) -> int:
    from repro.analysis import format_table, reduction_stats
    from repro.benchgen import BENCHMARKS
    from repro.cdcl import minisat_solver
    from repro.core import HyQSatConfig, HyQSatSolver

    names = args.benchmarks.split(",") if args.benchmarks else list(BENCHMARKS)
    rows: List[List[object]] = []
    for name in names:
        spec = BENCHMARKS[name.strip()]
        count = args.problems or min(3, spec.num_problems)
        reductions = []
        for index in range(count):
            formula = spec.generate(index, seed=args.seed)
            base = minisat_solver(formula, seed=args.seed).solve()
            hyq = HyQSatSolver(formula, config=HyQSatConfig(seed=index)).solve()
            reductions.append(
                max(1, base.stats.iterations) / max(1, hyq.stats.iterations)
            )
        stats = reduction_stats(reductions)
        rows.append([spec.name, spec.domain, count] + stats.as_row())
    print(
        format_table(
            ["Benchmark", "Domain", "#Problems", "Avg", "Geomean", "Max", "Min"],
            rows,
            title="Iteration reduction (classic CDCL / HyQSAT)",
        )
    )
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    from repro.analysis.trace_report import main as report_main

    return report_main([args.path])


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="hyqsat", description="HyQSAT hybrid QA+CDCL solver (HPCA'23 reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_solve = sub.add_parser("solve", help="solve a DIMACS CNF file")
    p_solve.add_argument("path")
    p_solve.add_argument("--classic", action="store_true", help="plain CDCL baseline")
    p_solve.add_argument("--noise", action="store_true", help="noisy 2000Q device model")
    p_solve.add_argument("--seed", type=int, default=0)
    p_solve.add_argument("--lenient", action="store_true", help="tolerate malformed DIMACS")
    p_solve.add_argument(
        "--qa-faults",
        default=None,
        metavar="SPEC",
        help="inject device faults: a probability for all channels "
        "(e.g. 0.2) or key=prob pairs over prog,timeout,dropout,drift "
        "(e.g. prog=0.1,timeout=0.05)",
    )
    p_solve.add_argument(
        "--fault-seed",
        type=int,
        default=None,
        help="fault-injection RNG seed (defaults to --seed)",
    )
    p_solve.add_argument(
        "--qa-retries", type=int, default=4, help="max attempts per QA call"
    )
    p_solve.add_argument(
        "--qa-deadline-us",
        type=float,
        default=None,
        help="per-call deadline in modelled device microseconds",
    )
    p_solve.add_argument(
        "--qa-budget-us",
        type=float,
        default=None,
        help="global QA time budget in modelled device microseconds",
    )
    p_solve.add_argument(
        "--qa-breaker-threshold",
        type=int,
        default=5,
        help="consecutive failed calls before the circuit breaker opens",
    )
    p_solve.add_argument(
        "--no-resilience",
        action="store_true",
        help="call the (possibly faulty) device bare, without the "
        "retry/breaker proxy",
    )
    p_solve.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write a JSONL span/event trace of the solve "
        "(schema: docs/TELEMETRY.md; summarise with 'hyqsat trace-report')",
    )
    p_solve.add_argument(
        "--profile",
        action="store_true",
        help="collect per-phase latency metrics and print a profile "
        "summary after the solve",
    )
    p_solve.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="export the solve's metrics registry to FILE",
    )
    p_solve.add_argument(
        "--metrics-format",
        choices=["prom", "json"],
        default="prom",
        help="metrics export format: Prometheus text or JSON "
        "(default: prom)",
    )
    p_solve.set_defaults(func=_cmd_solve)

    p_gen = sub.add_parser("generate", help="generate a benchmark instance")
    p_gen.add_argument("benchmark")
    p_gen.add_argument("--index", type=int, default=0)
    p_gen.add_argument("--seed", type=int, default=0)
    p_gen.add_argument("-o", "--output", default=None)
    p_gen.set_defaults(func=_cmd_generate)

    p_embed = sub.add_parser("embed", help="embed a CNF onto Chimera hardware")
    p_embed.add_argument("path")
    p_embed.add_argument(
        "--scheme", choices=["hyqsat", "minorminer", "pr"], default="hyqsat"
    )
    p_embed.add_argument("--grid", type=int, default=16)
    p_embed.add_argument("--timeout", type=float, default=60.0)
    p_embed.add_argument("--lenient", action="store_true")
    p_embed.set_defaults(func=_cmd_embed)

    p_suite = sub.add_parser("suite", help="run a Table I slice")
    p_suite.add_argument("--benchmarks", default="")
    p_suite.add_argument("--problems", type=int, default=0)
    p_suite.add_argument("--seed", type=int, default=0)
    p_suite.set_defaults(func=_cmd_suite)

    p_report = sub.add_parser(
        "trace-report", help="summarise a --trace JSONL file"
    )
    p_report.add_argument("path")
    p_report.set_defaults(func=_cmd_trace_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
