"""QA hardware topology models.

The paper targets D-Wave 2000Q, whose working graph is a Chimera
C16 lattice: a 16x16 grid of unit cells, each a complete bipartite
K4,4 between 4 "vertical" and 4 "horizontal" qubits (Figure 3).
:class:`~repro.topology.chimera.ChimeraGraph` models arbitrary grid
sizes (Table III scales to 64x64) and exposes the vertical/horizontal
*line* abstraction HyQSAT's embedder is built on.
"""

from repro.topology.chimera import (
    ChimeraGraph,
    HorizontalLine,
    QubitCoord,
    VerticalLine,
)

__all__ = ["ChimeraGraph", "HorizontalLine", "QubitCoord", "VerticalLine"]
