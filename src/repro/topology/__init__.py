"""QA hardware topology models.

The paper targets D-Wave 2000Q, whose working graph is a Chimera
C16 lattice: a 16x16 grid of unit cells, each a complete bipartite
K4,4 between 4 "vertical" and 4 "horizontal" qubits (Figure 3).
:class:`~repro.topology.chimera.ChimeraGraph` models arbitrary grid
sizes (Table III scales to 64x64) and exposes the vertical/horizontal
*line* abstraction HyQSAT's embedder is built on.
:class:`~repro.topology.pegasus.PegasusGraph` densifies the same
lattice Pegasus-style (odd + cross-cell couplers) to probe the
Table III claim that denser topologies shorten embedding chains.

:func:`build_hardware` is the single factory the service and gateway
layers use to turn a ``(topology, grid)`` pair into a hardware graph.
"""

from repro.topology.chimera import (
    ChimeraGraph,
    HorizontalLine,
    QubitCoord,
    VerticalLine,
)
from repro.topology.pegasus import PegasusGraph

#: Topology name -> graph class, the registry behind ``--topology``.
TOPOLOGIES = {
    "chimera": ChimeraGraph,
    "pegasus": PegasusGraph,
}


def build_hardware(topology: str = "chimera", grid: int = 16, shore: int = 4):
    """Build a ``grid x grid`` hardware graph of the named topology.

    The single construction path shared by ``build_device``, the
    gateway fleet, and the CLI so a ``(topology, grid)`` pair always
    means the same graph (the bit-identity contract depends on this).
    """
    try:
        cls = TOPOLOGIES[topology]
    except KeyError:
        raise ValueError(
            f"unknown topology {topology!r}; expected one of {sorted(TOPOLOGIES)}"
        ) from None
    if grid < 1:
        raise ValueError(f"grid must be >= 1, got {grid}")
    return cls(rows=grid, cols=grid, shore=shore)


__all__ = [
    "ChimeraGraph",
    "HorizontalLine",
    "PegasusGraph",
    "QubitCoord",
    "TOPOLOGIES",
    "VerticalLine",
    "build_hardware",
]
