"""The Chimera hardware graph (Section II-D, Figure 3).

A Chimera lattice ``C(rows, cols, shore)`` is a grid of unit cells.
Each cell holds ``shore`` *vertical* qubits and ``shore`` *horizontal*
qubits, fully connected to each other inside the cell (K_{shore,shore}
via the "diagonal" couplers of Figure 3).  Vertical qubits couple to
the same-position vertical qubit of the cells above/below; horizontal
qubits couple left/right.  D-Wave 2000Q is ``C(16, 16, 4)`` with 2048
qubits.

Two derived abstractions drive HyQSAT's embedding scheme:

- a **vertical line** ``(col, unit)`` — the chain of ``rows`` vertical
  qubits running down one cell column; there are ``cols * shore`` of
  them and each crosses every horizontal line.
- a **horizontal line** ``(row, unit)`` — the chain of ``cols``
  horizontal qubits running across one cell row.

A vertical and a horizontal line intersect in exactly one cell, where
the intra-cell coupler between their member qubits realises a
problem-graph edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx


@dataclass(frozen=True, order=True)
class QubitCoord:
    """Position of a qubit: cell (row, col), side, in-shore unit.

    ``side`` is 0 for vertical qubits and 1 for horizontal qubits.
    """

    row: int
    col: int
    side: int
    unit: int

    def __post_init__(self) -> None:
        if self.side not in (0, 1):
            raise ValueError(f"side must be 0 (vertical) or 1 (horizontal), got {self.side}")

    @property
    def is_vertical(self) -> bool:
        """True for a vertical-side qubit."""
        return self.side == 0

    @property
    def is_horizontal(self) -> bool:
        """True for a horizontal-side qubit."""
        return self.side == 1


@dataclass(frozen=True, order=True)
class VerticalLine:
    """A full-height vertical line: all vertical qubits at (col, unit)."""

    col: int
    unit: int


@dataclass(frozen=True, order=True)
class HorizontalLine:
    """A full-width horizontal line: all horizontal qubits at (row, unit)."""

    row: int
    unit: int


class ChimeraGraph:
    """A Chimera lattice with integer qubit ids.

    Qubit ids are dense: ``id = ((row * cols + col) * 2 + side) * shore
    + unit``.  Optionally a set of *broken* qubits can be marked
    unusable, as on real annealers where the working graph is a
    subgraph of the full lattice.
    """

    def __init__(
        self,
        rows: int = 16,
        cols: Optional[int] = None,
        shore: int = 4,
        broken_qubits: Sequence[int] = (),
    ):
        if rows < 1:
            raise ValueError(f"rows must be >= 1, got {rows}")
        if shore < 1:
            raise ValueError(f"shore must be >= 1, got {shore}")
        self.rows = rows
        self.cols = cols if cols is not None else rows
        if self.cols < 1:
            raise ValueError(f"cols must be >= 1, got {self.cols}")
        self.shore = shore
        self.broken_qubits: FrozenSet[int] = frozenset(broken_qubits)
        for qubit in self.broken_qubits:
            if not 0 <= qubit < self.num_qubits:
                raise ValueError(f"broken qubit {qubit} outside 0..{self.num_qubits - 1}")
        self._adjacency_cache: Optional[List[List[int]]] = None

    # ------------------------------------------------------------------
    # Size and id arithmetic
    # ------------------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Total qubit count (including broken ones)."""
        return self.rows * self.cols * 2 * self.shore

    @property
    def num_working_qubits(self) -> int:
        """Usable qubit count."""
        return self.num_qubits - len(self.broken_qubits)

    def qubit_id(self, coord: QubitCoord) -> int:
        """Dense integer id of a coordinate."""
        if not (0 <= coord.row < self.rows and 0 <= coord.col < self.cols):
            raise ValueError(f"cell ({coord.row},{coord.col}) outside the lattice")
        if not 0 <= coord.unit < self.shore:
            raise ValueError(f"unit {coord.unit} outside shore 0..{self.shore - 1}")
        return ((coord.row * self.cols + coord.col) * 2 + coord.side) * self.shore + coord.unit

    def coord(self, qubit: int) -> QubitCoord:
        """Coordinate of a dense qubit id."""
        if not 0 <= qubit < self.num_qubits:
            raise ValueError(f"qubit {qubit} outside 0..{self.num_qubits - 1}")
        unit = qubit % self.shore
        rest = qubit // self.shore
        side = rest % 2
        rest //= 2
        return QubitCoord(row=rest // self.cols, col=rest % self.cols, side=side, unit=unit)

    def is_working(self, qubit: int) -> bool:
        """Whether the qubit is usable."""
        return 0 <= qubit < self.num_qubits and qubit not in self.broken_qubits

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------

    def neighbors(self, qubit: int) -> List[int]:
        """Working neighbours of ``qubit`` (empty if it is broken).

        Backed by a lazily built adjacency cache: the first call pays
        O(num_qubits), later calls are list lookups (the embedders and
        the chain compiler query adjacency heavily).
        """
        if self._adjacency_cache is None:
            self._adjacency_cache = [
                self._compute_neighbors(q) for q in range(self.num_qubits)
            ]
        if not 0 <= qubit < self.num_qubits:
            return []
        return self._adjacency_cache[qubit]

    def _compute_neighbors(self, qubit: int) -> List[int]:
        if not self.is_working(qubit):
            return []
        c = self.coord(qubit)
        out: List[int] = []
        if c.is_vertical:
            # Intra-cell: all horizontal qubits of the same cell.
            for unit in range(self.shore):
                out.append(self.qubit_id(QubitCoord(c.row, c.col, 1, unit)))
            # Inter-cell: same line, row +/- 1.
            if c.row > 0:
                out.append(self.qubit_id(QubitCoord(c.row - 1, c.col, 0, c.unit)))
            if c.row < self.rows - 1:
                out.append(self.qubit_id(QubitCoord(c.row + 1, c.col, 0, c.unit)))
        else:
            for unit in range(self.shore):
                out.append(self.qubit_id(QubitCoord(c.row, c.col, 0, unit)))
            if c.col > 0:
                out.append(self.qubit_id(QubitCoord(c.row, c.col - 1, 1, c.unit)))
            if c.col < self.cols - 1:
                out.append(self.qubit_id(QubitCoord(c.row, c.col + 1, 1, c.unit)))
        return [q for q in out if q not in self.broken_qubits]

    def has_coupler(self, q1: int, q2: int) -> bool:
        """Whether a working coupler joins ``q1`` and ``q2``."""
        if not (self.is_working(q1) and self.is_working(q2)) or q1 == q2:
            return False
        c1, c2 = self.coord(q1), self.coord(q2)
        if c1.row == c2.row and c1.col == c2.col:
            return c1.side != c2.side
        if c1.side != c2.side:
            return False
        if c1.side == 0:
            return c1.col == c2.col and c1.unit == c2.unit and abs(c1.row - c2.row) == 1
        return c1.row == c2.row and c1.unit == c2.unit and abs(c1.col - c2.col) == 1

    def couplers(self) -> Iterator[Tuple[int, int]]:
        """All working couplers, each yielded once with q1 < q2."""
        for qubit in range(self.num_qubits):
            if qubit in self.broken_qubits:
                continue
            for other in self.neighbors(qubit):
                if qubit < other:
                    yield (qubit, other)

    @property
    def num_couplers(self) -> int:
        """Count of working couplers."""
        return sum(1 for _ in self.couplers())

    def to_networkx(self) -> nx.Graph:
        """The working graph as a networkx graph (for the baselines)."""
        graph = nx.Graph()
        graph.add_nodes_from(
            q for q in range(self.num_qubits) if q not in self.broken_qubits
        )
        graph.add_edges_from(self.couplers())
        return graph

    # ------------------------------------------------------------------
    # Line abstraction (HyQSAT embedding, Section IV-B)
    # ------------------------------------------------------------------

    @property
    def num_vertical_lines(self) -> int:
        """``cols * shore`` full-height vertical lines."""
        return self.cols * self.shore

    @property
    def num_horizontal_lines(self) -> int:
        """``rows * shore`` full-width horizontal lines."""
        return self.rows * self.shore

    def vertical_lines(self) -> List[VerticalLine]:
        """All vertical lines, ordered left-to-right then by unit."""
        return [
            VerticalLine(col=col, unit=unit)
            for col in range(self.cols)
            for unit in range(self.shore)
        ]

    def horizontal_lines_bottom_up(self) -> List[HorizontalLine]:
        """All horizontal lines, bottom row first (the step-2 order)."""
        return [
            HorizontalLine(row=row, unit=unit)
            for row in range(self.rows - 1, -1, -1)
            for unit in range(self.shore)
        ]

    def vertical_line_qubits(self, line: VerticalLine) -> List[int]:
        """Qubit ids of a vertical line, top row to bottom row."""
        return [
            self.qubit_id(QubitCoord(row, line.col, 0, line.unit))
            for row in range(self.rows)
        ]

    def horizontal_line_qubits(self, line: HorizontalLine) -> List[int]:
        """Qubit ids of a horizontal line, left to right."""
        return [
            self.qubit_id(QubitCoord(line.row, col, 1, line.unit))
            for col in range(self.cols)
        ]

    def vertical_line_of(self, qubit: int) -> Optional[VerticalLine]:
        """The vertical line containing ``qubit`` (None for horizontal)."""
        c = self.coord(qubit)
        if not c.is_vertical:
            return None
        return VerticalLine(col=c.col, unit=c.unit)

    def vertical_line_index(self, line: VerticalLine) -> int:
        """Dense index of a vertical line in left-to-right order."""
        return line.col * self.shore + line.unit

    def crossing_qubits(
        self, vline: VerticalLine, hline: HorizontalLine
    ) -> Tuple[int, int]:
        """The (vertical, horizontal) qubit pair where two lines cross.

        The pair is intra-cell adjacent, so a coupler joins them.
        """
        vq = self.qubit_id(QubitCoord(hline.row, vline.col, 0, vline.unit))
        hq = self.qubit_id(QubitCoord(hline.row, vline.col, 1, hline.unit))
        return vq, hq

    def __repr__(self) -> str:
        return (
            f"ChimeraGraph(rows={self.rows}, cols={self.cols}, shore={self.shore}, "
            f"qubits={self.num_working_qubits})"
        )
