"""A Pegasus-style densification of the Chimera lattice.

D-Wave's Pegasus generation keeps the same bipartite unit-cell bones
as Chimera but raises qubit degree from 6 to 15 by adding two new
coupler families: *odd* couplers pairing same-side qubits inside a
cell, and overlapping K_{4,4} neighbourhoods that let a qubit reach
the orthogonal shore of a neighbouring cell.  Bian et al. 2018 (see
PAPERS.md) show this extra density is what shortens embedding chains
at scale — the effect behind the paper's Table III claim.

:class:`PegasusGraph` models that densification on top of
:class:`~repro.topology.chimera.ChimeraGraph` while keeping the qubit
id scheme, the broken-qubit handling, and the vertical/horizontal
*line* abstraction bit-identical to Chimera:

- **odd couplers** — same cell, same side, consecutive unit pair
  ``2k <-> 2k+1`` (one per pair, as on real Pegasus);
- **cross-cell internal couplers** — every vertical qubit of cell
  ``(r, c)`` couples to the full horizontal shore of cell
  ``(r+1, c)``, modelling the overlapping K_{4,4} neighbourhoods.

With ``shore=4`` this lifts interior qubit degree from 6 to 11 and
roughly doubles coupler count — "Pegasus-style" rather than a
coordinate-faithful Pegasus ``P_n``, which is all the chain-length
probe needs.  Because the Chimera couplers are a strict subset, any
embedding valid on ``ChimeraGraph(n, n, s)`` is valid here too, so
the HyQSAT line embedder and the solve path run unchanged; the
density advantage shows up in the minorminer-like baseline, whose
chains can shortcut through the new couplers.
"""

from __future__ import annotations

from typing import List

from repro.topology.chimera import ChimeraGraph, QubitCoord


class PegasusGraph(ChimeraGraph):
    """Chimera lattice plus odd and cross-cell internal couplers.

    Same constructor, qubit ids, and line abstraction as
    :class:`ChimeraGraph`; only adjacency is denser.  The Chimera
    coupler set is a strict subgraph, so same-size comparisons of
    embedding quality isolate the effect of topology density.
    """

    def _compute_neighbors(self, qubit: int) -> List[int]:
        base = super()._compute_neighbors(qubit)
        if not base and not self.is_working(qubit):
            return base
        c = self.coord(qubit)
        extra: List[int] = []
        # Odd coupler: consecutive unit pair on the same side of the cell.
        partner = c.unit + 1 if c.unit % 2 == 0 else c.unit - 1
        if 0 <= partner < self.shore:
            extra.append(self.qubit_id(QubitCoord(c.row, c.col, c.side, partner)))
        # Cross-cell internal couplers: vertical shore of (r, c) fully
        # couples to the horizontal shore of (r + 1, c).
        if c.is_vertical and c.row < self.rows - 1:
            for unit in range(self.shore):
                extra.append(self.qubit_id(QubitCoord(c.row + 1, c.col, 1, unit)))
        elif c.is_horizontal and c.row > 0:
            for unit in range(self.shore):
                extra.append(self.qubit_id(QubitCoord(c.row - 1, c.col, 0, unit)))
        return base + [q for q in extra if q not in self.broken_qubits]

    def has_coupler(self, q1: int, q2: int) -> bool:
        if super().has_coupler(q1, q2):
            return True
        if not (self.is_working(q1) and self.is_working(q2)) or q1 == q2:
            return False
        c1, c2 = self.coord(q1), self.coord(q2)
        if c1.row == c2.row and c1.col == c2.col and c1.side == c2.side:
            lo, hi = sorted((c1.unit, c2.unit))
            return hi == lo + 1 and lo % 2 == 0
        if c1.col == c2.col and c1.side != c2.side:
            vert, horiz = (c1, c2) if c1.is_vertical else (c2, c1)
            return horiz.row == vert.row + 1
        return False

    @property
    def density(self) -> float:
        """Working couplers per working qubit (Chimera C16 is ~2.9)."""
        if self.num_working_qubits == 0:
            return 0.0
        return self.num_couplers / self.num_working_qubits

    def __repr__(self) -> str:
        return (
            f"PegasusGraph(rows={self.rows}, cols={self.cols}, shore={self.shore}, "
            f"qubits={self.num_working_qubits})"
        )
