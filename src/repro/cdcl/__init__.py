"""Conflict-Driven Clause Learning solver substrate.

A complete two-watched-literal CDCL implementation with:

- 1UIP conflict analysis and clause learning,
- VSIDS (MiniSAT-style) and CHB (Kissat-style) decision heuristics,
- Luby and geometric restart schedules,
- phase saving,
- learned-clause database reduction,
- per-clause activity and visit counters (the signals HyQSAT's
  frontend consumes),
- an iteration hook used by the hybrid solver to steer the search,
- an incremental interface (``add_clause`` / ``push`` / ``pop`` /
  repeated ``solve``) with learned-clause retention.

Two interchangeable engines implement the solver contract: the pure
Python :class:`~repro.cdcl.solver.CdclSolver` reference and the
native-kernel :class:`~repro.cdcl.fast.FastCdclSolver`, selected via
:func:`~repro.cdcl.engine.create_solver`; they are gated bit-identical.

Two factory presets mirror the paper's baselines:
:func:`~repro.cdcl.presets.minisat_solver` (VSIDS) and
:func:`~repro.cdcl.presets.kissat_solver` (CHB + aggressive restarts).
"""

from repro.cdcl.engine import ENGINES, available_engines, create_solver, resolve_engine
from repro.cdcl.fast import FastCdclSolver, FastEngineError, fast_engine_supports
from repro.cdcl.heuristics import ChbHeuristic, DecisionHeuristic, VsidsHeuristic
from repro.cdcl.luby import luby, luby_sequence
from repro.cdcl.presets import kissat_solver, minisat_solver
from repro.cdcl.proof import DratProof, ProofCheckResult, check_proof, parse_proof
from repro.cdcl.solver import (
    CdclSolver,
    IterationHook,
    SolverConfig,
    SolverResult,
    SolverStatus,
)
from repro.cdcl.stats import ClauseCounters, SolverStats

__all__ = [
    "CdclSolver",
    "ChbHeuristic",
    "ClauseCounters",
    "DecisionHeuristic",
    "DratProof",
    "ENGINES",
    "FastCdclSolver",
    "FastEngineError",
    "IterationHook",
    "SolverConfig",
    "SolverResult",
    "SolverStats",
    "SolverStatus",
    "ProofCheckResult",
    "VsidsHeuristic",
    "available_engines",
    "check_proof",
    "create_solver",
    "fast_engine_supports",
    "kissat_solver",
    "luby",
    "luby_sequence",
    "minisat_solver",
    "parse_proof",
    "resolve_engine",
]
