"""DRAT proof logging and checking.

Modern CDCL solvers emit DRAT proofs — the sequence of learned
(added) and deleted clauses — so an UNSAT answer can be verified
independently; SAT-competition results are only accepted with one.
This module provides both sides:

- :class:`DratProof` — the solver-side log.  Each learned clause is an
  addition line, each database reduction a deletion line, and a
  refutation ends with the empty clause.
- :func:`check_proof` — a from-scratch forward RUP checker: every
  added clause must be derivable by *reverse unit propagation* (assert
  its negation, unit-propagate over all active clauses, reach a
  conflict).  A proof is a valid refutation when its additions check
  and the empty clause is derived.

The checker is written for clarity over speed (the bench instances are
small); it is the test suite's independent referee for every UNSAT
answer the solver produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.sat.cnf import CNF, Clause


@dataclass(frozen=True)
class ProofStep:
    """One DRAT line: an addition or a deletion of a clause."""

    lits: Tuple[int, ...]
    is_deletion: bool = False

    def to_line(self) -> str:
        """The step in DRAT text format."""
        prefix = "d " if self.is_deletion else ""
        return prefix + " ".join(str(l) for l in self.lits) + " 0"


class DratProof:
    """A DRAT proof log (solver side)."""

    def __init__(self) -> None:
        self._steps: List[ProofStep] = []

    def add_clause(self, lits: Iterable[int]) -> None:
        """Record a learned clause (signed DIMACS literals)."""
        self._steps.append(ProofStep(tuple(lits), is_deletion=False))

    def add_empty_clause(self) -> None:
        """Record the refutation's final step."""
        self._steps.append(ProofStep((), is_deletion=False))

    def delete_clause(self, lits: Iterable[int]) -> None:
        """Record a clause-database deletion."""
        self._steps.append(ProofStep(tuple(lits), is_deletion=True))

    @property
    def steps(self) -> Tuple[ProofStep, ...]:
        """All recorded steps, in order."""
        return tuple(self._steps)

    @property
    def num_additions(self) -> int:
        """Count of addition lines."""
        return sum(1 for s in self._steps if not s.is_deletion)

    @property
    def ends_with_empty_clause(self) -> bool:
        """True when the log ends in a refutation."""
        return any(not s.is_deletion and not s.lits for s in self._steps)

    def to_text(self) -> str:
        """Standard DRAT text format."""
        return "\n".join(step.to_line() for step in self._steps) + (
            "\n" if self._steps else ""
        )

    def write(self, path) -> None:
        """Write the proof to a file."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_text())


def parse_proof(text: str) -> DratProof:
    """Parse DRAT text back into a :class:`DratProof`."""
    proof = DratProof()
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        deletion = line.startswith("d ")
        body = line[2:] if deletion else line
        lits = [int(tok) for tok in body.split()]
        if not lits or lits[-1] != 0:
            raise ValueError(f"malformed DRAT line: {raw!r}")
        lits = lits[:-1]
        if deletion:
            proof.delete_clause(lits)
        elif lits:
            proof.add_clause(lits)
        else:
            proof.add_empty_clause()
    return proof


def _unit_propagate_to_conflict(
    clauses: Sequence[Tuple[int, ...]], assumed_false: Tuple[int, ...]
) -> bool:
    """True if asserting the negations of ``assumed_false`` leads to a
    conflict by unit propagation over ``clauses`` (the RUP check)."""
    assignment: Dict[int, bool] = {}
    for lit in assumed_false:
        value = lit < 0  # literal must be FALSE, so var = not(positive)
        var = abs(lit)
        if var in assignment and assignment[var] != value:
            return True  # the negated clause is itself contradictory
        assignment[var] = value

    changed = True
    while changed:
        changed = False
        for clause in clauses:
            unassigned: Optional[int] = None
            satisfied = False
            for lit in clause:
                var = abs(lit)
                if var not in assignment:
                    if unassigned is not None:
                        unassigned = 0  # two+ free literals: not unit
                        break
                    unassigned = lit
                elif assignment[var] == (lit > 0):
                    satisfied = True
                    break
            if satisfied or unassigned == 0:
                continue
            if unassigned is None:
                return True  # clause fully falsified: conflict
            var = abs(unassigned)
            assignment[var] = unassigned > 0
            changed = True
    return False


@dataclass(frozen=True)
class ProofCheckResult:
    """Outcome of :func:`check_proof`."""

    valid: bool
    checked_additions: int
    failed_step: Optional[int] = None
    reason: str = ""


def check_proof(formula: CNF, proof: DratProof) -> ProofCheckResult:
    """Forward RUP-check a DRAT refutation of ``formula``.

    Returns a valid result only when every addition is RUP with
    respect to the active clause set and the empty clause is derived.
    """
    active: List[Tuple[int, ...]] = [
        tuple(l.value for l in clause.lits) for clause in formula
    ]
    checked = 0
    for index, step in enumerate(proof.steps):
        if step.is_deletion:
            key = tuple(sorted(step.lits))
            for i, clause in enumerate(active):
                if tuple(sorted(clause)) == key:
                    del active[i]
                    break
            continue
        if not _unit_propagate_to_conflict(active, step.lits):
            return ProofCheckResult(
                valid=False,
                checked_additions=checked,
                failed_step=index,
                reason=f"step {index} is not RUP: {step.to_line()}",
            )
        checked += 1
        if not step.lits:
            return ProofCheckResult(valid=True, checked_additions=checked)
        active.append(step.lits)
    return ProofCheckResult(
        valid=False,
        checked_additions=checked,
        reason="proof does not derive the empty clause",
    )
