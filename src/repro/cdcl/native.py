"""Build and bind the native CDCL kernel (``kernel.c``).

The kernel is compiled on demand with the system C compiler into a
shared library cached under ``build/cdcl-kernel/`` at the repository
root (gitignored; override with ``HYQSAT_KERNEL_CACHE``).  The cache
key is the SHA-256 of the C source, so editing ``kernel.c``
transparently rebuilds.  No third-party packaging machinery is
involved — just ``cc -O2 -shared`` and :mod:`ctypes`.

Float determinism: the kernel must reproduce CPython's IEEE-754
double arithmetic bit for bit (the fast engine is gated bit-identical
against the reference).  ``-ffp-contract=off`` keeps the compiler from
fusing ``a*b+c`` into FMA, and we deliberately avoid ``-ffast-math``
and ``-march=native``.

:func:`load_kernel` returns the bound library (or ``None`` when no
compiler is available); :func:`native_available` is the cheap
feature probe the engine registry uses.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
from pathlib import Path
from typing import Optional

_SOURCE = Path(__file__).with_name("kernel.c")

#: ``kernel_run`` exit events (keep in sync with kernel.c).
EV_SAT = 1
EV_ROOT_CONFLICT = 2
EV_BUDGET = 3
EV_RESTART_DUE = 4
EV_REDUCE_DUE = 5
EV_NEED_DECISION = 6
EV_GROW = 7

#: Heuristic kinds (keep in sync with kernel.c).
HEUR_VSIDS = 0
HEUR_CHB = 1

_i8p = ctypes.POINTER(ctypes.c_int8)
_u8p = ctypes.POINTER(ctypes.c_uint8)
_i32p = ctypes.POINTER(ctypes.c_int32)
_i64p = ctypes.POINTER(ctypes.c_int64)
_f64p = ctypes.POINTER(ctypes.c_double)


class CSolverStruct(ctypes.Structure):
    """ctypes mirror of the ``CSolver`` struct in kernel.c.

    Field order must match the C definition exactly; every member is
    8 bytes wide so the layout is padding-free on both sides.
    """

    _fields_ = [
        # assignment state
        ("n_vars", ctypes.c_int64),
        ("values", _i8p),
        ("levels", _i32p),
        ("reasons", _i32p),
        ("phases", _u8p),
        ("trail", _i32p),
        ("trail_len", ctypes.c_int64),
        ("trail_lim", _i32p),
        ("n_levels", ctypes.c_int64),
        ("prop_head", ctypes.c_int64),
        ("seen", _u8p),
        ("mark", _u8p),
        ("path", _i32p),
        # clause store
        ("pool", _i32p),
        ("pool_len", ctypes.c_int64),
        ("pool_cap", ctypes.c_int64),
        ("c_start", _i32p),
        ("c_size", _i32p),
        ("c_orig", _i32p),
        ("c_learned", _u8p),
        ("c_dead", _u8p),
        ("c_act", _f64p),
        ("n_clauses", ctypes.c_int64),
        ("clause_cap", ctypes.c_int64),
        ("learned_list", _i32p),
        ("n_learned", ctypes.c_int64),
        # watch lists
        ("w_head", _i32p),
        ("w_tail", _i32p),
        ("node_next", _i32p),
        ("node_clause", _i32p),
        ("node_len", ctypes.c_int64),
        ("node_cap", ctypes.c_int64),
        ("free_head", ctypes.c_int64),
        # per-original-clause counters
        ("prop_visits", _i64p),
        ("conf_visits", _i64p),
        ("orig_act", _f64p),
        # stats
        ("propagations", ctypes.c_int64),
        ("conflicts", ctypes.c_int64),
        ("decisions", ctypes.c_int64),
        ("iterations", ctypes.c_int64),
        ("restarts", ctypes.c_int64),
        ("learned_total", ctypes.c_int64),
        ("deleted_total", ctypes.c_int64),
        ("max_level", ctypes.c_int64),
        # clause activity bookkeeping
        ("clause_bump", ctypes.c_double),
        ("clause_decay", ctypes.c_double),
        ("orig_bump", ctypes.c_double),
        # config
        ("phase_saving", ctypes.c_int64),
        # heuristic
        ("heur_kind", ctypes.c_int64),
        ("scores", _f64p),
        ("heap", _i32p),
        ("heap_pos", _i32p),
        ("heap_len", ctypes.c_int64),
        ("vs_bump", ctypes.c_double),
        ("vs_decay", ctypes.c_double),
        ("chb_step", ctypes.c_double),
        ("chb_step_min", ctypes.c_double),
        ("chb_step_decay", ctypes.c_double),
        ("chb_conflicts", ctypes.c_int64),
        ("chb_last", _i64p),
        # analysis output
        ("out_learned", _i32p),
        ("out_learned_len", ctypes.c_int64),
        ("out_backjump", ctypes.c_int64),
        # run-loop control
        ("resume_at_pick", ctypes.c_int64),
        ("pending_conflict", ctypes.c_int64),
        ("max_conflicts", ctypes.c_int64),
        ("max_iterations", ctypes.c_int64),
        ("restart_limit", ctypes.c_int64),
        ("conflicts_in_window", ctypes.c_int64),
        ("max_learned", ctypes.c_double),
        ("n_assumptions", ctypes.c_int64),
    ]


_SP = ctypes.POINTER(CSolverStruct)

#: (name, restype, extra argtypes after the struct pointer)
_SIGNATURES = [
    ("kernel_bump_variable", None, [ctypes.c_int64, ctypes.c_double]),
    ("kernel_assign_root", None, [ctypes.c_int64]),
    ("kernel_new_level", None, []),
    ("kernel_decide", None, [ctypes.c_int64]),
    ("kernel_backtrack", None, [ctypes.c_int64]),
    ("kernel_truncate_root", None, [ctypes.c_int64]),
    ("kernel_attach_clause", None, [ctypes.c_int64]),
    (
        "kernel_add_clause",
        None,
        [ctypes.c_int64, ctypes.c_int64, ctypes.c_int64, ctypes.c_int64],
    ),
    ("kernel_detach_clauses", None, [_u8p]),
    ("kernel_propagate", ctypes.c_int64, []),
    ("kernel_analyze", None, [ctypes.c_int64]),
    ("kernel_learn", ctypes.c_int64, []),
    ("kernel_pick", ctypes.c_int64, []),
    ("kernel_run", ctypes.c_int64, []),
]


def _cache_dir() -> Path:
    override = os.environ.get("HYQSAT_KERNEL_CACHE")
    if override:
        return Path(override)
    # src/repro/cdcl/native.py -> repository root / build / cdcl-kernel
    return _SOURCE.parents[3] / "build" / "cdcl-kernel"


def _compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _build_library() -> Optional[Path]:
    """Compile kernel.c into the cache (no-op when already built)."""
    source = _SOURCE.read_bytes()
    key = hashlib.sha256(source).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = cache / f"kernel-{key}.so"
    if lib_path.exists():
        return lib_path
    compiler = _compiler()
    if compiler is None:
        return None
    cache.mkdir(parents=True, exist_ok=True)
    tmp_path = cache / f"kernel-{key}.{os.getpid()}.tmp.so"
    cmd = [
        compiler,
        "-O2",
        "-std=c99",
        "-ffp-contract=off",
        "-fPIC",
        "-shared",
        str(_SOURCE),
        "-o",
        str(tmp_path),
    ]
    try:
        subprocess.run(
            cmd, check=True, capture_output=True, text=True, timeout=120
        )
    except (subprocess.SubprocessError, OSError):
        tmp_path.unlink(missing_ok=True)
        return None
    os.replace(tmp_path, lib_path)  # atomic under concurrent builds
    return lib_path


_lib: Optional[ctypes.CDLL] = None
_load_attempted = False


def load_kernel() -> Optional[ctypes.CDLL]:
    """The bound kernel library, building it on first use.

    Returns ``None`` (and remembers the failure) when no C compiler
    is available or the build fails; callers then fall back to the
    reference engine.
    """
    global _lib, _load_attempted
    if _lib is not None or _load_attempted:
        return _lib
    _load_attempted = True
    lib_path = _build_library()
    if lib_path is None:
        return None
    try:
        lib = ctypes.CDLL(str(lib_path))
    except OSError:
        return None
    for name, restype, extra in _SIGNATURES:
        fn = getattr(lib, name)
        fn.restype = restype
        fn.argtypes = [_SP] + extra
    _lib = lib
    return _lib


def native_available() -> bool:
    """True when the native kernel can be (or was) built and loaded."""
    return load_kernel() is not None
