"""FastCdclSolver: the native-kernel CDCL engine.

A drop-in replacement for :class:`~repro.cdcl.solver.CdclSolver` that
keeps all solver state in flat NumPy buffers (literal pool + clause
offset arrays, linked-list watch lists, typed trail/assignment arrays)
and executes the hot loops — propagation, conflict analysis, the
decision heap, and the VSIDS/CHB heuristics — in the C kernel bound by
:mod:`repro.cdcl.native`.

Two drive modes:

- **run mode** (no hook, no tracer, no proof, no random decisions, no
  queued forced decisions): the entire search loop runs inside
  ``kernel_run``; Python only services the events the kernel cannot
  decide alone (restart scheduling, learned-DB reduction, assumption
  decisions, buffer growth).
- **step mode** (anything interactive attached): Python mirrors the
  reference solve loop one iteration at a time, calling kernel
  primitives, so the :class:`~repro.cdcl.solver.IterationHook`
  steering surface, tracing events, and DRAT logging behave exactly
  like the reference engine.

Both modes are gated **bit-identical** to the reference engine — same
model, same conflict/iteration counts, same learned clauses, same
per-clause counters for any (formula, config, seed); see
``tests/cdcl/test_fast_identity.py``.

The incremental API (:meth:`FastCdclSolver.add_clause` /
:meth:`~FastCdclSolver.push` / :meth:`~FastCdclSolver.pop`, repeated
``solve`` calls with learned-clause retention) mirrors the reference
semantics documented on :class:`~repro.cdcl.solver.CdclSolver`.
"""

from __future__ import annotations

import ctypes
from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.cdcl import native
from repro.cdcl.heuristics import ChbHeuristic, VsidsHeuristic
from repro.cdcl.luby import luby
from repro.cdcl.solver import (
    _UNASSIGNED,
    SolverConfig,
    SolverResult,
    SolverStatus,
    _dec,
    _enc,
)
from repro.cdcl.stats import ClauseCounters, SolverStats
from repro.sat.assignment import Assignment
from repro.sat.cnf import CNF, Clause, Lit

__all__ = ["FastCdclSolver", "FastEngineError", "fast_engine_supports"]

_U8P = ctypes.POINTER(ctypes.c_uint8)

#: numpy dtype per struct pointer field (growth + binding table).
_ARRAY_DTYPES = {
    "values": np.int8,
    "levels": np.int32,
    "reasons": np.int32,
    "phases": np.uint8,
    "trail": np.int32,
    "trail_lim": np.int32,
    "seen": np.uint8,
    "mark": np.uint8,
    "path": np.int32,
    "pool": np.int32,
    "c_start": np.int32,
    "c_size": np.int32,
    "c_orig": np.int32,
    "c_learned": np.uint8,
    "c_dead": np.uint8,
    "c_act": np.float64,
    "learned_list": np.int32,
    "w_head": np.int32,
    "w_tail": np.int32,
    "node_next": np.int32,
    "node_clause": np.int32,
    "prop_visits": np.int64,
    "conf_visits": np.int64,
    "orig_act": np.float64,
    "scores": np.float64,
    "heap": np.int32,
    "heap_pos": np.int32,
    "chb_last": np.int64,
    "out_learned": np.int32,
}

_FIELD_TYPES = dict(native.CSolverStruct._fields_)


class FastEngineError(RuntimeError):
    """The fast engine cannot be used (no kernel, or unsupported config)."""


def fast_engine_supports(config: Optional[SolverConfig]) -> Tuple[bool, str]:
    """Whether the fast engine can run this config bit-identically.

    Returns ``(ok, reason)``; ``reason`` explains a ``False``.  Custom
    heuristic factories are the one unsupported feature — the kernel
    implements exactly VSIDS and CHB.
    """
    heuristic = (config or SolverConfig()).heuristic_factory()
    if type(heuristic) not in (VsidsHeuristic, ChbHeuristic):
        return (
            False,
            f"custom heuristic {type(heuristic).__name__} is not "
            "implemented by the native kernel",
        )
    if not native.native_available():
        return (False, "native kernel unavailable (no C compiler?)")
    return (True, "")


class _FastPushMark:
    """Snapshot taken by push(), restored by pop()."""

    __slots__ = (
        "n_clauses",
        "pool_len",
        "n_orig",
        "n_root_units",
        "n_counters",
        "trail_len",
        "trivially_unsat",
    )

    def __init__(self, **kw):
        for name in self.__slots__:
            setattr(self, name, kw[name])


class FastCdclSolver:
    """Native-kernel CDCL solver, API-compatible with ``CdclSolver``.

    Raises :class:`FastEngineError` when the kernel cannot be built or
    the config needs a heuristic the kernel does not implement; use
    :func:`repro.cdcl.engine.create_solver` to fall back gracefully.
    """

    def __init__(
        self,
        formula: CNF,
        config: Optional[SolverConfig] = None,
        proof=None,
        observability=None,
    ):
        lib = native.load_kernel()
        if lib is None:
            raise FastEngineError("native kernel unavailable")
        self._lib = lib
        self.formula = formula
        self.config = config or SolverConfig()
        self._tracer = (
            observability.tracer
            if observability is not None and observability.tracer.enabled
            else None
        )
        self.stats = SolverStats()
        self.proof = proof

        heuristic = self.config.heuristic_factory()
        if type(heuristic) is VsidsHeuristic:
            heur_kind = native.HEUR_VSIDS
        elif type(heuristic) is ChbHeuristic:
            heur_kind = native.HEUR_CHB
        else:
            raise FastEngineError(
                f"heuristic {type(heuristic).__name__} is not implemented "
                "by the native kernel; use the reference engine"
            )

        n = formula.num_vars
        self._num_vars = n
        self._rng = np.random.default_rng(self.config.seed)
        self._forced_decisions: Deque[int] = deque()
        self._trivially_unsat = False
        self._root_units: List[int] = []
        self._push_stack: List[_FastPushMark] = []
        #: Step-loop locals mirrored for checkpointing (written just
        #: before each hook call) and the resume flag that makes the
        #: next ``solve`` continue instead of restarting.
        self._loop_state: Optional[Tuple] = None
        self._resume_pending = False

        # Parse the formula exactly like the reference constructor.
        clause_lits: List[List[int]] = []
        clause_orig: List[int] = []
        for index, clause in enumerate(formula):
            if clause.is_tautology:
                continue
            ilits = [_enc(lit) for lit in clause.lits]
            if not ilits:
                self._trivially_unsat = True
                continue
            if len(ilits) == 1:
                self._root_units.append(ilits[0])
            clause_lits.append(ilits)
            clause_orig.append(index)

        n_orig = len(clause_lits)
        orig_pool = sum(len(lits) for lits in clause_lits)
        pool_cap = orig_pool + max(1024, 8 * (n + 1))
        clause_cap = n_orig + max(256, n)
        node_cap = 2 * clause_cap
        n_counters = formula.num_clauses

        self._arr: dict = {}
        self._s = native.CSolverStruct()
        self._sp = ctypes.byref(self._s)
        s = self._s

        s.n_vars = n
        self._new_array("values", n, fill=_UNASSIGNED)
        self._new_array("levels", n)
        self._new_array("reasons", n, fill=-1)
        self._new_array("phases", n, fill=int(self.config.default_phase))
        self._new_array("trail", n)
        self._new_array("trail_lim", n + 4)
        self._new_array("seen", n)
        self._new_array("mark", n)
        self._new_array("path", n)
        self._new_array("out_learned", n + 1)

        self._new_array("pool", pool_cap)
        self._new_array("c_start", clause_cap)
        self._new_array("c_size", clause_cap)
        self._new_array("c_orig", clause_cap)
        self._new_array("c_learned", clause_cap)
        self._new_array("c_dead", clause_cap)
        self._new_array("c_act", clause_cap)
        self._new_array("learned_list", clause_cap)
        self._new_array("w_head", 2 * n, fill=-1)
        self._new_array("w_tail", 2 * n, fill=-1)
        self._new_array("node_next", node_cap)
        self._new_array("node_clause", node_cap)

        self._new_array("prop_visits", n_counters)
        self._new_array("conf_visits", n_counters)
        self._new_array("orig_act", n_counters, fill=1.0)
        self._counters_len = n_counters
        self.counters = ClauseCounters(
            propagation_visits=self._arr["prop_visits"][:n_counters],
            conflict_visits=self._arr["conf_visits"][:n_counters],
            activity=self._arr["orig_act"][:n_counters],
        )

        self._new_array("scores", n)
        heap = np.arange(n, dtype=np.int32)
        self._bind("heap", heap)
        self._bind("heap_pos", heap.copy())
        s.heap_len = n
        self._new_array("chb_last", n)

        s.pool_cap = pool_cap
        s.clause_cap = clause_cap
        s.node_cap = node_cap
        s.free_head = -1
        s.pending_conflict = -1
        s.clause_bump = 1.0
        s.clause_decay = self.config.clause_decay
        s.orig_bump = self.config.activity_bump
        s.phase_saving = int(self.config.phase_saving)
        s.heur_kind = heur_kind
        if heur_kind == native.HEUR_VSIDS:
            s.vs_bump = heuristic._initial_bump
            s.vs_decay = heuristic._decay
        else:
            s.chb_step = heuristic._step0
            s.chb_step_min = heuristic._step_min
            s.chb_step_decay = heuristic._step_decay

        # Install the original clauses (watch attachment order matches
        # the reference constructor: input order, units unattached).
        if n_orig:
            pool = self._arr["pool"]
            sizes = np.fromiter(
                (len(lits) for lits in clause_lits), np.int32, n_orig
            )
            starts = np.zeros(n_orig, np.int32)
            np.cumsum(sizes[:-1], out=starts[1:])
            flat = [l for lits in clause_lits for l in lits]
            pool[:orig_pool] = flat
            self._arr["c_start"][:n_orig] = starts
            self._arr["c_size"][:n_orig] = sizes
            self._arr["c_orig"][:n_orig] = clause_orig
            s.pool_len = orig_pool
            s.n_clauses = n_orig
            attach = lib.kernel_attach_clause
            for ci in range(n_orig):
                if sizes[ci] >= 2:
                    attach(self._sp, ci)
        #: Flat clause indices of the original clauses, in input order
        #: (the reference engine's ``_clauses`` list).
        self._orig_cis: List[int] = list(range(n_orig))

    # ------------------------------------------------------------------
    # Buffer management
    # ------------------------------------------------------------------

    def _bind(self, field: str, arr: np.ndarray) -> None:
        """Register ``arr`` as the live buffer behind struct ``field``."""
        self._arr[field] = arr
        setattr(self._s, field, arr.ctypes.data_as(_FIELD_TYPES[field]))

    def _new_array(self, field: str, size: int, fill=0) -> np.ndarray:
        dtype = _ARRAY_DTYPES[field]
        arr = (
            np.zeros(size, dtype)
            if fill == 0
            else np.full(size, fill, dtype)
        )
        self._bind(field, arr)
        return arr

    def _grow_array(self, field: str, new_cap: int) -> np.ndarray:
        old = self._arr[field]
        grown = np.zeros(new_cap, old.dtype)
        grown[: len(old)] = old
        self._bind(field, grown)
        return grown

    def _grow(self) -> None:
        """Grow whichever buffer the next conflict could overflow."""
        s = self._s
        if s.pool_len + self._num_vars + 1 > s.pool_cap:
            new_cap = max(2 * s.pool_cap, s.pool_len + self._num_vars + 1)
            self._grow_array("pool", new_cap)
            s.pool_cap = new_cap
        if s.n_clauses + 1 > s.clause_cap:
            new_cap = 2 * s.clause_cap
            for field in (
                "c_start",
                "c_size",
                "c_orig",
                "c_learned",
                "c_dead",
                "c_act",
                "learned_list",
            ):
                self._grow_array(field, new_cap)
            s.clause_cap = new_cap
        if s.node_len + 2 > s.node_cap:
            new_cap = 2 * s.node_cap
            self._grow_array("node_next", new_cap)
            self._grow_array("node_clause", new_cap)
            s.node_cap = new_cap

    def _grow_counters(self, need: int) -> None:
        if need <= len(self._arr["prop_visits"]):
            return
        new_cap = max(2 * len(self._arr["prop_visits"]), need, 16)
        self._grow_array("prop_visits", new_cap)
        self._grow_array("conf_visits", new_cap)
        old_act = self._arr["orig_act"]
        grown = np.ones(new_cap, np.float64)
        grown[: len(old_act)] = old_act
        self._bind("orig_act", grown)

    def _refresh_counter_views(self) -> None:
        k = self._counters_len
        self.counters.propagation_visits = self._arr["prop_visits"][:k]
        self.counters.conflict_visits = self._arr["conf_visits"][:k]
        self.counters.activity = self._arr["orig_act"][:k]

    # ------------------------------------------------------------------
    # Public inspection / steering API (CdclSolver-compatible)
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of variables of the input formula."""
        return self._num_vars

    @property
    def decision_level(self) -> int:
        """Current depth of the decision stack."""
        return int(self._s.n_levels)

    def value_of_var(self, var: int) -> Optional[bool]:
        """Current value of external variable ``var`` (None if unassigned)."""
        val = int(self._arr["values"][var - 1])
        return None if val == _UNASSIGNED else bool(val)

    def current_assignment(self) -> Assignment:
        """Snapshot of the current partial assignment (external vars)."""
        out = Assignment()
        values = self._arr["values"]
        for var0 in np.flatnonzero(values != _UNASSIGNED):
            out.assign(int(var0) + 1, bool(values[var0]))
        return out

    def unsatisfied_original_clauses(self) -> List[int]:
        """Indices of original clauses not yet satisfied by the partial
        assignment (the frontend's candidate pool)."""
        out: List[int] = []
        values = self._arr["values"]
        pool = self._arr["pool"]
        c_start = self._arr["c_start"]
        c_size = self._arr["c_size"]
        c_orig = self._arr["c_orig"]
        for ci in self._orig_cis:
            start = c_start[ci]
            lits = pool[start : start + c_size[ci]]
            vals = values[lits >> 1]
            if bool(np.any((vals != _UNASSIGNED) & ((vals ^ (lits & 1)) == 1))):
                continue
            out.append(int(c_orig[ci]))
        return out

    def set_phase(self, var: int, value: bool) -> None:
        """Force the saved phase of external variable ``var``
        (HyQSAT feedback strategy 2)."""
        self._arr["phases"][var - 1] = int(bool(value))

    def bump_variable(self, var: int, amount: float = 1.0) -> None:
        """Raise the decision priority of external variable ``var``
        (HyQSAT feedback strategy 4)."""
        self._lib.kernel_bump_variable(self._sp, var - 1, float(amount))

    def enqueue_decision(self, lit: Lit) -> None:
        """Queue ``lit`` to be used as the next decision(s), ahead of the
        heuristic (skipped if its variable is already assigned)."""
        self._forced_decisions.append(_enc(lit))

    def clear_decision_queue(self) -> None:
        """Drop all queued forced decisions."""
        self._forced_decisions.clear()

    @property
    def has_pending_decisions(self) -> bool:
        """Whether hook-enqueued decisions are still waiting."""
        return bool(self._forced_decisions)

    def clause_activity(self, index: int) -> float:
        """Section IV-A activity score of original clause ``index``."""
        return float(self.counters.activity[index])

    # ------------------------------------------------------------------
    # Incremental API (mirror of CdclSolver)
    # ------------------------------------------------------------------

    @property
    def push_depth(self) -> int:
        """Number of open clause groups."""
        return len(self._push_stack)

    def add_clause(self, clause) -> None:
        """Add an original clause between ``solve`` calls.

        Same semantics as :meth:`CdclSolver.add_clause`: root-level
        addition into the innermost group, tautologies dropped, the
        first two non-false literals become the watched slots.
        """
        if isinstance(clause, Clause):
            ext_lits = list(clause.lits)
        else:
            ext_lits = [
                lit if isinstance(lit, Lit) else Lit(int(lit))
                for lit in clause
            ]
        self._lib.kernel_backtrack(self._sp, 0)
        ilits = [_enc(lit) for lit in ext_lits]
        present = set(ilits)
        if any((ilit ^ 1) in present for ilit in ilits):  # tautology
            return
        if not ilits:
            self._trivially_unsat = True
            return
        orig_index = self._counters_len
        self._grow_counters(orig_index + 1)
        self._arr["prop_visits"][orig_index] = 0
        self._arr["conf_visits"][orig_index] = 0
        self._arr["orig_act"][orig_index] = 1.0
        self._counters_len = orig_index + 1
        self._refresh_counter_views()

        free = [i for i, l in enumerate(ilits) if self._lit_value(l) != 0]
        if len(free) >= 2:
            i0, i1 = free[0], free[1]
            ordered = [ilits[i0], ilits[i1]] + [
                l for j, l in enumerate(ilits) if j != i0 and j != i1
            ]
        else:
            ordered = ilits

        s = self._s
        size = len(ordered)
        while (
            s.pool_len + size > s.pool_cap
            or s.n_clauses + 1 > s.clause_cap
            or s.node_len + 2 > s.node_cap
        ):
            self._grow()
        ci = int(s.n_clauses)
        start = int(s.pool_len)
        self._arr["pool"][start : start + size] = ordered
        self._arr["c_start"][ci] = start
        self._arr["c_size"][ci] = size
        self._arr["c_orig"][ci] = orig_index
        self._arr["c_learned"][ci] = 0
        self._arr["c_dead"][ci] = 0
        self._arr["c_act"][ci] = 0.0
        s.pool_len = start + size
        s.n_clauses = ci + 1
        self._orig_cis.append(ci)

        if size == 1:
            self._root_units.append(ordered[0])
        elif not free:
            # Conflicts with root-implied assignments: this group is
            # unsatisfiable while active.
            self._trivially_unsat = True
        elif len(free) == 1:
            self._root_units.append(ilits[free[0]])
        else:
            self._lib.kernel_attach_clause(self._sp, ci)

    def learned_clause_lits(
        self, max_len: int = 8, limit: int = 256
    ) -> List[List[int]]:
        """Short learned clauses as signed DIMACS literal lists (same
        contract as :meth:`CdclSolver.learned_clause_lits`)."""
        s = self._s
        pool = self._arr["pool"]
        c_start = self._arr["c_start"]
        c_size = self._arr["c_size"]
        c_dead = self._arr["c_dead"]
        short: List[List[int]] = []
        for ci in self._arr["learned_list"][: s.n_learned]:
            ci = int(ci)
            size = int(c_size[ci])
            if c_dead[ci] or size > max_len:
                continue
            start = int(c_start[ci])
            short.append(
                [int(ilit) for ilit in pool[start : start + size]]
            )
        short.sort(key=len)
        return [
            [_dec(ilit).value for ilit in lits] for lits in short[:limit]
        ]

    def push(self) -> int:
        """Open a clause group; returns the new depth."""
        self._lib.kernel_backtrack(self._sp, 0)
        s = self._s
        self._push_stack.append(
            _FastPushMark(
                n_clauses=int(s.n_clauses),
                pool_len=int(s.pool_len),
                n_orig=len(self._orig_cis),
                n_root_units=len(self._root_units),
                n_counters=self._counters_len,
                trail_len=int(s.trail_len),
                trivially_unsat=self._trivially_unsat,
            )
        )
        return len(self._push_stack)

    def pop(self) -> None:
        """Retract the innermost clause group (see
        :meth:`CdclSolver.pop` for the exact semantics)."""
        if not self._push_stack:
            raise IndexError("pop() without a matching push()")
        lib = self._lib
        lib.kernel_backtrack(self._sp, 0)
        s = self._s
        mark = self._push_stack.pop()
        # Every clause created after the push — added originals and
        # clauses learned while the group was open — is retracted.
        # (Clause indices are monotone in creation order, so the
        # threshold captures exactly the group's clauses.)
        if s.n_clauses > mark.n_clauses:
            flags = np.zeros(int(s.n_clauses), np.uint8)
            flags[mark.n_clauses :] = 1
            lib.kernel_detach_clauses(self._sp, flags.ctypes.data_as(_U8P))
            s.n_clauses = mark.n_clauses
            s.pool_len = mark.pool_len
        del self._orig_cis[mark.n_orig :]
        del self._root_units[mark.n_root_units :]
        self._counters_len = mark.n_counters
        self._refresh_counter_views()
        lib.kernel_truncate_root(self._sp, mark.trail_len)
        self._trivially_unsat = mark.trivially_unsat

    # ------------------------------------------------------------------
    # Checkpoint / resume (repro.service.checkpoint)
    # ------------------------------------------------------------------

    def capture_search_state(self) -> dict:
        """Snapshot the complete search state as a JSON-able dict.

        Must be called from inside an :class:`IterationHook` in step
        mode (the only point where the step loop's restart counters are
        mirrored).  The snapshot covers every kernel buffer and struct
        scalar plus the Python-side state, taken *as of the top of the
        current iteration* — a solver restored from it re-executes that
        iteration and continues bit-identically.  Open :meth:`push`
        groups cannot be checkpointed.
        """
        if self._loop_state is None:
            raise RuntimeError(
                "capture_search_state must be called from an iteration hook"
            )
        if self._push_stack:
            raise RuntimeError("cannot checkpoint with open clause groups")
        scalars = {
            name: getattr(self._s, name)
            for name, _ctype in native.CSolverStruct._fields_
            if name not in _ARRAY_DTYPES
        }
        # Stored as iterations-1: the resumed loop re-increments and
        # re-enters the hook for the iteration being captured.
        scalars["iterations"] -= 1
        restart_num, interval = self._loop_state
        return {
            "engine": "fast",
            "num_vars": self._num_vars,
            "arrays": {
                field: self._arr[field].tolist() for field in _ARRAY_DTYPES
            },
            "scalars": scalars,
            "rng": self._rng.bit_generator.state,
            "forced_decisions": list(self._forced_decisions),
            "root_units": list(self._root_units),
            "orig_cis": list(self._orig_cis),
            "counters_len": self._counters_len,
            "loop": [restart_num, interval],
        }

    def restore_search_state(self, state: dict) -> None:
        """Rebuild the search state captured by
        :meth:`capture_search_state`; the next :meth:`solve` call (no
        assumptions) resumes mid-search instead of restarting."""
        if state.get("engine") != "fast":
            raise ValueError(
                f"checkpoint engine {state.get('engine')!r} is not 'fast'"
            )
        if state.get("num_vars") != self._num_vars:
            raise ValueError("checkpoint does not match this formula")
        if self._push_stack:
            raise RuntimeError("cannot restore over open clause groups")
        scalars = state["scalars"]
        if scalars["heur_kind"] != int(self._s.heur_kind):
            raise ValueError("checkpoint heuristic mismatch")
        for field in _ARRAY_DTYPES:
            arr = np.array(state["arrays"][field], dtype=_ARRAY_DTYPES[field])
            self._bind(field, arr)
        for name, value in scalars.items():
            setattr(self._s, name, value)
        self._counters_len = state["counters_len"]
        self._refresh_counter_views()
        self._rng = np.random.default_rng()
        self._rng.bit_generator.state = state["rng"]
        self._forced_decisions = deque(state["forced_decisions"])
        self._root_units = list(state["root_units"])
        self._orig_cis = list(state["orig_cis"])
        loop = state["loop"]
        self._loop_state = (loop[0], loop[1])
        self._resume_pending = True
        self._sync_stats()

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[Lit] = (),
        hook=None,
    ) -> SolverResult:
        """Run the CDCL search (same contract as the reference)."""
        s = self._s
        lib = self._lib
        resuming = self._resume_pending
        self._resume_pending = False
        if resuming and assumptions:
            raise ValueError(
                "cannot resume a checkpointed solve with assumptions"
            )
        if self._trivially_unsat:
            self._record_refutation(assumptions)
            self._sync_stats()
            return SolverResult(SolverStatus.UNSAT, None, self.stats)

        if not resuming:
            lib.kernel_backtrack(self._sp, 0)  # re-entry
            s.prop_head = 0  # re-scan root watches (mirror of the reference)
            for unit in self._root_units:
                value = self._lit_value(unit)
                if value == 0:
                    self._record_refutation(assumptions)
                    self._sync_stats()
                    return SolverResult(SolverStatus.UNSAT, None, self.stats)
                if value == _UNASSIGNED:
                    lib.kernel_assign_root(self._sp, unit)

        assumption_lits = [_enc(a) for a in assumptions]
        need_lim = self._num_vars + len(assumption_lits) + 4
        if len(self._arr["trail_lim"]) < need_lim:
            self._grow_array("trail_lim", need_lim)

        if not resuming:
            s.max_learned = max(
                100.0,
                self.config.learntsize_factor * max(1, len(self._orig_cis)),
            )
        s.max_conflicts = (
            -1 if self.config.max_conflicts is None
            else self.config.max_conflicts
        )
        s.max_iterations = (
            -1 if self.config.max_iterations is None
            else self.config.max_iterations
        )
        s.n_assumptions = len(assumption_lits)
        if not resuming:
            s.conflicts_in_window = 0
            s.resume_at_pick = 0
            s.pending_conflict = -1

        run_mode = (
            not resuming
            and hook is None
            and self._tracer is None
            and self.proof is None
            and self.config.random_decision_freq == 0.0
            and not self._forced_decisions
        )
        if run_mode:
            return self._solve_run(assumption_lits, assumptions)
        return self._solve_step(assumption_lits, assumptions, hook, resuming)

    def _solve_run(self, assumption_lits, assumptions) -> SolverResult:
        """Drive ``kernel_run``, servicing its exit events."""
        s = self._s
        lib = self._lib
        run = lib.kernel_run
        restart_num = 0
        interval = self._next_restart_interval(0)
        s.restart_limit = -1 if interval is None else interval
        while True:
            event = run(self._sp)
            if event == native.EV_GROW:
                self._grow()
                continue
            if event == native.EV_RESTART_DUE:
                restart_num += 1
                s.conflicts_in_window = 0
                s.restart_limit = self._next_restart_interval(restart_num)
                s.restarts += 1
                lib.kernel_backtrack(self._sp, 0)
                continue
            if event == native.EV_REDUCE_DUE:
                self._reduce_learned_db()
                s.max_learned = s.max_learned * self.config.learntsize_inc
                continue
            if event == native.EV_NEED_DECISION:
                ilit = assumption_lits[int(s.n_levels)]
                value = self._lit_value(ilit)
                if value == 0:  # assumption conflict
                    self._sync_stats()
                    return SolverResult(SolverStatus.UNSAT, None, self.stats)
                if value == _UNASSIGNED:
                    lib.kernel_decide(self._sp, ilit)
                    s.resume_at_pick = 0
                else:
                    lib.kernel_new_level(self._sp)  # silently satisfied
                continue
            self._sync_stats()
            if event == native.EV_SAT:
                return SolverResult(SolverStatus.SAT, self._model(), self.stats)
            if event == native.EV_ROOT_CONFLICT:
                self._record_refutation(assumptions)
                return SolverResult(SolverStatus.UNSAT, None, self.stats)
            return SolverResult(SolverStatus.UNKNOWN, None, self.stats)

    def _solve_step(
        self, assumption_lits, assumptions, hook, resuming=False
    ) -> SolverResult:
        """Mirror the reference solve loop, one iteration per pass."""
        s = self._s
        lib = self._lib
        config = self.config
        tracer = self._tracer
        if resuming:
            restart_num, interval = self._loop_state
        else:
            restart_num = 0
            interval = self._next_restart_interval(0)
        while True:
            if (
                config.max_conflicts is not None
                and s.conflicts >= config.max_conflicts
            ) or (
                config.max_iterations is not None
                and s.iterations >= config.max_iterations
            ):
                self._sync_stats()
                return SolverResult(SolverStatus.UNKNOWN, None, self.stats)

            s.iterations += 1
            span = (
                tracer.start_span("iteration", index=int(s.iterations))
                if tracer is not None
                else None
            )
            try:
                if hook is not None:
                    self._sync_stats()
                    # Mirror the loop-locals so a hook can checkpoint
                    # this exact iteration (capture_search_state).
                    self._loop_state = (restart_num, interval)
                    proposed = hook.on_iteration(self)
                    if proposed is not None and proposed.satisfies(self.formula):
                        return SolverResult(
                            SolverStatus.SAT, proposed, self.stats
                        )

                conflict = lib.kernel_propagate(self._sp)
                if tracer is not None:
                    tracer.event(
                        "cdcl.propagate",
                        trail=int(s.trail_len),
                        level=int(s.n_levels),
                    )
                if conflict >= 0:
                    s.conflicts += 1
                    s.conflicts_in_window += 1
                    if s.n_levels == 0:
                        self._record_refutation(assumptions)
                        self._sync_stats()
                        return SolverResult(
                            SolverStatus.UNSAT, None, self.stats
                        )
                    conflict_level = int(s.n_levels)
                    self._grow()
                    lib.kernel_analyze(self._sp, conflict)
                    if self.proof is not None:
                        out = self._arr["out_learned"][: s.out_learned_len]
                        self.proof.add_clause(_dec(int(l)).value for l in out)
                    backjump = int(s.out_backjump)
                    learned_size = int(s.out_learned_len)
                    lib.kernel_learn(self._sp)
                    if tracer is not None:
                        tracer.event(
                            "cdcl.conflict",
                            level=conflict_level,
                            backjump=backjump,
                            learned_size=learned_size,
                        )
                    continue

                if (
                    interval is not None
                    and s.conflicts_in_window >= interval
                ):
                    restart_num += 1
                    s.conflicts_in_window = 0
                    interval = self._next_restart_interval(restart_num)
                    s.restarts += 1
                    lib.kernel_backtrack(self._sp, 0)
                    if tracer is not None:
                        tracer.event("cdcl.restart", number=restart_num)
                    continue

                if s.n_learned >= s.max_learned + s.trail_len:
                    self._reduce_learned_db()
                    s.max_learned = s.max_learned * config.learntsize_inc

                next_lit = self._pick_branch(assumption_lits)
                if next_lit is None:
                    self._sync_stats()
                    return SolverResult(
                        SolverStatus.SAT, self._model(), self.stats
                    )
                if next_lit == -1:  # assumption conflict
                    self._sync_stats()
                    return SolverResult(SolverStatus.UNSAT, None, self.stats)
                lib.kernel_decide(self._sp, next_lit)
            finally:
                if span is not None:
                    span.end()

    # ------------------------------------------------------------------
    # Cold-path helpers
    # ------------------------------------------------------------------

    def _lit_value(self, ilit: int) -> int:
        val = int(self._arr["values"][ilit >> 1])
        if val == _UNASSIGNED:
            return _UNASSIGNED
        return val ^ (ilit & 1)

    def _pick_branch(self, assumption_lits: List[int]) -> Optional[int]:
        """Step-mode decision pick (mirror of the reference)."""
        s = self._s
        while self._forced_decisions:
            ilit = self._forced_decisions.popleft()
            if self._lit_value(ilit) == _UNASSIGNED:
                return ilit
        while s.n_levels < len(assumption_lits):
            ilit = assumption_lits[int(s.n_levels)]
            value = self._lit_value(ilit)
            if value == 0:
                return -1
            if value == _UNASSIGNED:
                return ilit
            self._lib.kernel_new_level(self._sp)  # silently satisfied
        config = self.config
        if (
            config.random_decision_freq > 0.0
            and self._rng.random() < config.random_decision_freq
        ):
            values = self._arr["values"]
            free = [
                v for v in range(self._num_vars)
                if values[v] == _UNASSIGNED
            ]
            if free:
                var = int(self._rng.choice(free))
                phase = int(self._arr["phases"][var])
                return 2 * var + (0 if phase else 1)
        lit = self._lib.kernel_pick(self._sp)
        if lit == -2:
            return None
        return int(lit)

    def _reduce_learned_db(self) -> None:
        """Drop the lower-activity half of removable learned clauses
        (mirror of the reference, including tie order)."""
        s = self._s
        trail = self._arr["trail"][: s.trail_len]
        reasons = self._arr["reasons"]
        locked = set()
        for ilit in trail:
            reason = int(reasons[int(ilit) >> 1])
            if reason >= 0:
                locked.add(reason)
        c_size = self._arr["c_size"]
        c_act = self._arr["c_act"]
        learned = [int(ci) for ci in self._arr["learned_list"][: s.n_learned]]
        removable = [
            ci for ci in learned if int(c_size[ci]) > 2 and ci not in locked
        ]
        removable.sort(key=lambda ci: c_act[ci])  # stable: ties keep learn order
        to_remove = removable[: len(removable) // 2]
        if not to_remove:
            return
        s.deleted_total += len(to_remove)
        if self.proof is not None:
            doomed = set(to_remove)
            pool = self._arr["pool"]
            c_start = self._arr["c_start"]
            for ci in removable:
                if ci in doomed:
                    start = int(c_start[ci])
                    lits = pool[start : start + int(c_size[ci])]
                    self.proof.delete_clause(_dec(int(l)).value for l in lits)
        flags = np.zeros(int(s.n_clauses), np.uint8)
        flags[to_remove] = 1
        self._lib.kernel_detach_clauses(self._sp, flags.ctypes.data_as(_U8P))

    def _next_restart_interval(self, restart_num: int) -> Optional[int]:
        strategy = self.config.restart_strategy
        if strategy == "none":
            return None
        if strategy == "luby":
            return self.config.luby_base * luby(restart_num + 1)
        return int(
            self.config.geometric_first
            * self.config.geometric_factor ** restart_num
        )

    def _record_refutation(self, assumptions: Sequence[Lit]) -> None:
        if self.proof is not None and not assumptions:
            self.proof.add_empty_clause()

    def _sync_stats(self) -> None:
        s = self._s
        stats = self.stats
        stats.iterations = int(s.iterations)
        stats.decisions = int(s.decisions)
        stats.propagations = int(s.propagations)
        stats.conflicts = int(s.conflicts)
        stats.restarts = int(s.restarts)
        stats.learned_clauses = int(s.learned_total)
        stats.deleted_clauses = int(s.deleted_total)
        stats.max_decision_level = int(s.max_level)

    def _model(self) -> Assignment:
        out = Assignment()
        values = self._arr["values"]
        for var0 in range(self._num_vars):
            out.assign(var0 + 1, bool(values[var0] == 1))
        return out
