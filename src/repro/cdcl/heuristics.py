"""Decision heuristics: VSIDS and CHB, backed by an indexed binary heap.

VSIDS (Variable State Independent Decaying Sum, Moskewicz et al., the
Chaff heuristic MiniSAT adopts) bumps the activity of variables seen in
conflict analysis and decays all activities geometrically; the next
decision picks the unassigned variable of maximum activity.

CHB (Conflict History-based Branching, the multi-armed-bandit flavour
used by Kissat-MAB) rewards variables by the reciprocal of the "age" of
the last conflict they were involved in, with an exponential moving
average.

Both share :class:`_IndexedMaxHeap`, a binary heap with position
tracking that supports the ``decrease/increase-key`` and ``reinsert``
operations a CDCL loop needs in O(log n).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Sequence


class _IndexedMaxHeap:
    """Binary max-heap over variable indices ``0..n-1`` keyed by a
    caller-owned score array, with position tracking for O(log n)
    update-key and membership tests."""

    __slots__ = ("_scores", "_heap", "_pos")

    def __init__(self, scores: List[float]):
        self._scores = scores
        self._heap: List[int] = []
        self._pos: List[int] = [-1] * len(scores)

    def __contains__(self, var: int) -> bool:
        return self._pos[var] >= 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, var: int) -> None:
        """Insert ``var`` (no-op if already present)."""
        if self._pos[var] >= 0:
            return
        self._heap.append(var)
        self._pos[var] = len(self._heap) - 1
        self._sift_up(len(self._heap) - 1)

    def pop(self) -> int:
        """Remove and return the max-score variable."""
        if not self._heap:
            raise IndexError("pop from empty heap")
        top = self._heap[0]
        last = self._heap.pop()
        self._pos[top] = -1
        if self._heap:
            self._heap[0] = last
            self._pos[last] = 0
            self._sift_down(0)
        return top

    def update(self, var: int) -> None:
        """Restore heap order after the caller changed ``var``'s score."""
        pos = self._pos[var]
        if pos < 0:
            return
        self._sift_up(pos)
        self._sift_down(self._pos[var])

    def rescore_all(self) -> None:
        """Rebuild after a bulk score change (e.g. global rescale)."""
        for i in range(len(self._heap) // 2 - 1, -1, -1):
            self._sift_down(i)

    def _sift_up(self, pos: int) -> None:
        heap, scores, positions = self._heap, self._scores, self._pos
        var = heap[pos]
        score = scores[var]
        while pos > 0:
            parent = (pos - 1) >> 1
            if scores[heap[parent]] >= score:
                break
            heap[pos] = heap[parent]
            positions[heap[pos]] = pos
            pos = parent
        heap[pos] = var
        positions[var] = pos

    def _sift_down(self, pos: int) -> None:
        heap, scores, positions = self._heap, self._scores, self._pos
        size = len(heap)
        var = heap[pos]
        score = scores[var]
        while True:
            child = 2 * pos + 1
            if child >= size:
                break
            right = child + 1
            if right < size and scores[heap[right]] > scores[heap[child]]:
                child = right
            if scores[heap[child]] <= score:
                break
            heap[pos] = heap[child]
            positions[heap[pos]] = pos
            pos = child
        heap[pos] = var
        positions[var] = pos


class DecisionHeuristic(Protocol):
    """Interface the CDCL loop drives.

    Variables are the solver's internal 0-based indices.
    """

    def init(self, num_vars: int) -> None:
        """Reset state for a formula with ``num_vars`` variables."""

    def on_assign(self, var: int) -> None:
        """``var`` left the unassigned pool."""

    def on_unassign(self, var: int) -> None:
        """``var`` re-entered the unassigned pool (backtracking)."""

    def on_conflict_var(self, var: int) -> None:
        """``var`` was seen while analysing a conflict."""

    def after_conflict(self) -> None:
        """Called once after each conflict analysis completes."""

    def pick(self, assigned: Sequence[bool]) -> Optional[int]:
        """Return the next decision variable, or None if all assigned."""

    def bump(self, var: int, amount: float) -> None:
        """Externally raise ``var``'s priority (HyQSAT strategy 4)."""

    def score_of(self, var: int) -> float:
        """Current priority score of ``var`` (diagnostics)."""


class VsidsHeuristic:
    """MiniSAT-style VSIDS with geometric decay via increment scaling.

    Instead of periodically multiplying every activity by a decay
    factor, the bump increment is divided by the decay after each
    conflict; activities are rescaled when they threaten overflow.
    """

    RESCALE_LIMIT = 1e100

    def __init__(self, decay: float = 0.95, bump: float = 1.0):
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self._decay = decay
        self._initial_bump = bump
        self._bump = bump
        self._scores: List[float] = []
        self._heap: Optional[_IndexedMaxHeap] = None

    def init(self, num_vars: int) -> None:
        """Reset scores and rebuild the heap for ``num_vars`` variables."""
        self._scores = [0.0] * num_vars
        self._bump = self._initial_bump
        self._heap = _IndexedMaxHeap(self._scores)
        for var in range(num_vars):
            self._heap.push(var)

    def on_assign(self, var: int) -> None:
        """No-op: assigned variables are lazily skipped in ``pick``."""

    def on_unassign(self, var: int) -> None:
        """Re-insert a backtracked variable into the decision pool."""
        self._heap.push(var)

    def on_conflict_var(self, var: int) -> None:
        """Bump a variable seen during conflict analysis."""
        self._bump_score(var, self._bump)

    def after_conflict(self) -> None:
        """Geometric decay via increment scaling."""
        self._bump /= self._decay

    def pick(self, assigned: Sequence[bool]) -> Optional[int]:
        """Highest-activity unassigned variable (None when all assigned)."""
        heap = self._heap
        while len(heap):
            var = heap.pop()
            if not assigned[var]:
                return var
        return None

    def bump(self, var: int, amount: float) -> None:
        """External priority boost (HyQSAT strategy 4)."""
        self._bump_score(var, amount * self._bump)

    def score_of(self, var: int) -> float:
        """Current activity of ``var``."""
        return self._scores[var]

    def _bump_score(self, var: int, amount: float) -> None:
        self._scores[var] += amount
        if self._scores[var] > self.RESCALE_LIMIT:
            inv = 1.0 / self.RESCALE_LIMIT
            for i in range(len(self._scores)):
                self._scores[i] *= inv
            self._bump *= inv
            self._heap.rescore_all()
        else:
            self._heap.update(var)


class ChbHeuristic:
    """Conflict History-based Branching (Liang et al.), as in Kissat-MAB.

    Each variable keeps a Q-score updated with an exponential moving
    average of a reward ``multiplier / (conflicts - last_conflict + 1)``
    when the variable is assigned or involved in analysis.  The step
    size decays from 0.4 towards 0.06 with each conflict.
    """

    def __init__(self, step: float = 0.4, step_min: float = 0.06, step_decay: float = 1e-6):
        self._step0 = step
        self._step_min = step_min
        self._step_decay = step_decay
        self._step = step
        self._conflicts = 0
        self._scores: List[float] = []
        self._last_conflict: List[int] = []
        self._heap: Optional[_IndexedMaxHeap] = None

    def init(self, num_vars: int) -> None:
        """Reset Q-scores and conflict ages for ``num_vars`` variables."""
        self._scores = [0.0] * num_vars
        self._last_conflict = [0] * num_vars
        self._step = self._step0
        self._conflicts = 0
        self._heap = _IndexedMaxHeap(self._scores)
        for var in range(num_vars):
            self._heap.push(var)

    def on_assign(self, var: int) -> None:
        """Reward an assignment (0.9 multiplier, per CHB)."""
        self._reward(var, multiplier=0.9)

    def on_unassign(self, var: int) -> None:
        """Re-insert a backtracked variable into the decision pool."""
        self._heap.push(var)

    def on_conflict_var(self, var: int) -> None:
        """Full reward + conflict-age stamp for an analysed variable."""
        self._last_conflict[var] = self._conflicts
        self._reward(var, multiplier=1.0)

    def after_conflict(self) -> None:
        """Advance the conflict clock and decay the EMA step size."""
        self._conflicts += 1
        if self._step > self._step_min:
            self._step = max(self._step_min, self._step - self._step_decay)

    def pick(self, assigned: Sequence[bool]) -> Optional[int]:
        """Highest-Q unassigned variable (None when all assigned)."""
        heap = self._heap
        while len(heap):
            var = heap.pop()
            if not assigned[var]:
                return var
        return None

    def bump(self, var: int, amount: float) -> None:
        """External priority boost (HyQSAT strategy 4)."""
        self._scores[var] += amount
        self._heap.update(var)

    def score_of(self, var: int) -> float:
        """Current Q-score of ``var``."""
        return self._scores[var]

    def _reward(self, var: int, multiplier: float) -> None:
        age = self._conflicts - self._last_conflict[var] + 1
        reward = multiplier / age
        self._scores[var] = (1.0 - self._step) * self._scores[var] + self._step * reward
        self._heap.update(var)
