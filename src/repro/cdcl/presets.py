"""Solver presets mirroring the paper's classical baselines.

The paper compares against MiniSAT 2.2 (VSIDS) and Kissat-MAB
(CHB/VSIDS hybrid chosen by a multi-armed bandit; we model its CHB arm,
which is what distinguishes it from MiniSAT).  These factories return a
configured solver for a formula; ``engine`` selects the implementation
(see :mod:`repro.cdcl.engine`) — both engines are bit-identical, so the
choice only affects speed.
"""

from __future__ import annotations

from typing import Optional

from repro.cdcl.engine import create_solver
from repro.cdcl.heuristics import ChbHeuristic, VsidsHeuristic
from repro.cdcl.solver import SolverConfig
from repro.sat.cnf import CNF


def minisat_solver(
    formula: CNF,
    seed: int = 0,
    max_conflicts: Optional[int] = None,
    max_iterations: Optional[int] = None,
    engine: str = "reference",
):
    """A MiniSAT-2.2-flavoured solver: VSIDS, Luby restarts (base 100),
    phase saving with default-false polarity."""
    config = SolverConfig(
        heuristic_factory=lambda: VsidsHeuristic(decay=0.95),
        restart_strategy="luby",
        luby_base=100,
        phase_saving=True,
        default_phase=False,
        seed=seed,
        max_conflicts=max_conflicts,
        max_iterations=max_iterations,
    )
    return create_solver(formula, engine=engine, config=config)


def kissat_solver(
    formula: CNF,
    seed: int = 0,
    max_conflicts: Optional[int] = None,
    max_iterations: Optional[int] = None,
    engine: str = "reference",
):
    """A Kissat-MAB-flavoured solver: CHB branching with more aggressive
    (shorter base) Luby restarts."""
    config = SolverConfig(
        heuristic_factory=lambda: ChbHeuristic(),
        restart_strategy="luby",
        luby_base=50,
        phase_saving=True,
        default_phase=True,
        seed=seed,
        max_conflicts=max_conflicts,
        max_iterations=max_iterations,
    )
    return create_solver(formula, engine=engine, config=config)
