"""The CDCL engine.

A faithful MiniSAT-style implementation: two-watched-literal unit
propagation, first-UIP clause learning with recursive-light literal
minimisation, phase saving, Luby/geometric restarts, and activity-based
learned-clause database reduction.

Two integration surfaces distinguish this implementation from an
off-the-shelf solver; both exist so the HyQSAT hybrid loop
(:mod:`repro.core`) can steer the search:

- :class:`~repro.cdcl.stats.ClauseCounters` tracks, for every *original*
  clause, how often it is visited in propagation and in conflict
  resolving, plus the Section IV-A activity score (initialised to 1,
  bumped by a constant when the clause participates in a backtrack).
- An :class:`IterationHook` is invoked at the top of every
  decision/propagation/conflict iteration and may inspect the partial
  assignment, re-prioritise variables, force phases or decisions, or
  short-circuit the search with a complete model.

Internally variables are 0-based and a literal is encoded as
``2*var + (0 if positive else 1)`` so negation is ``lit ^ 1``.  All
public APIs use the external DIMACS convention via
:class:`~repro.sat.cnf.Lit`.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.cdcl.heuristics import ChbHeuristic, DecisionHeuristic, VsidsHeuristic
from repro.cdcl.luby import luby
from repro.cdcl.stats import ClauseCounters, SolverStats
from repro.sat.assignment import Assignment
from repro.sat.cnf import CNF, Clause, Lit

_UNASSIGNED = -1


def _enc(lit: Lit) -> int:
    """External literal -> internal encoding."""
    return 2 * (lit.var - 1) + (0 if lit.positive else 1)


def _dec(ilit: int) -> Lit:
    """Internal encoding -> external literal."""
    var = (ilit >> 1) + 1
    return Lit(var if (ilit & 1) == 0 else -var)


class SolverStatus(enum.Enum):
    """Terminal state of a solver run."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class SolverResult:
    """Outcome of :meth:`CdclSolver.solve`.

    ``model`` is a total assignment when ``status`` is SAT, else None.
    """

    status: SolverStatus
    model: Optional[Assignment]
    stats: SolverStats

    @property
    def is_sat(self) -> bool:
        """True when a model was found."""
        return self.status is SolverStatus.SAT

    @property
    def is_unsat(self) -> bool:
        """True when the formula was refuted."""
        return self.status is SolverStatus.UNSAT


class IterationHook(Protocol):
    """Callback driven once per search iteration.

    Return a complete :class:`Assignment` to propose a model; the
    solver verifies it and terminates with SAT if it satisfies the
    formula (HyQSAT feedback strategy 1).  Return None to continue.
    """

    def on_iteration(self, solver: "CdclSolver") -> Optional[Assignment]:
        """Inspect/steer ``solver``; optionally propose a full model."""


@dataclass
class SolverConfig:
    """Tunables for :class:`CdclSolver`.

    The defaults mirror MiniSAT 2.2.  ``heuristic_factory`` builds a
    fresh :class:`DecisionHeuristic` per ``solve`` call.
    """

    heuristic_factory: Callable[[], DecisionHeuristic] = VsidsHeuristic
    restart_strategy: str = "luby"  # "luby" | "geometric" | "none"
    luby_base: int = 100
    geometric_first: int = 100
    geometric_factor: float = 1.5
    phase_saving: bool = True
    default_phase: bool = False
    clause_decay: float = 0.999
    activity_bump: float = 1.0  # Section IV-A constant added per backtrack
    learntsize_factor: float = 1.0 / 3.0
    learntsize_inc: float = 1.1
    random_decision_freq: float = 0.0
    seed: int = 0
    max_conflicts: Optional[int] = None
    max_iterations: Optional[int] = None

    def __post_init__(self) -> None:
        if self.restart_strategy not in ("luby", "geometric", "none"):
            raise ValueError(f"unknown restart strategy {self.restart_strategy!r}")
        if not 0.0 <= self.random_decision_freq <= 1.0:
            raise ValueError("random_decision_freq must be in [0, 1]")


class _IntClause:
    """Internal clause: integer literals with watch metadata.

    The first two literals are the watched ones (MiniSAT convention).
    ``orig_index`` is the index into the input formula for original
    clauses and -1 for learned clauses.  ``group`` is the push depth
    the clause was created at (see :meth:`CdclSolver.push`); learned
    clauses are discarded when their group is popped.
    """

    __slots__ = ("lits", "learned", "activity", "orig_index", "group")

    def __init__(self, lits: List[int], learned: bool, orig_index: int):
        self.lits = lits
        self.learned = learned
        self.activity = 0.0
        self.orig_index = orig_index
        self.group = 0

    def __len__(self) -> int:
        return len(self.lits)

    def __repr__(self) -> str:
        kind = "learned" if self.learned else f"orig#{self.orig_index}"
        return f"_IntClause({[str(_dec(l)) for l in self.lits]}, {kind})"


@dataclass(frozen=True)
class _PushMark:
    """Snapshot taken by :meth:`CdclSolver.push`, restored by ``pop``."""

    num_clauses: int
    num_root_units: int
    num_counters: int
    trail_len: int
    trivially_unsat: bool


class CdclSolver:
    """A conflict-driven clause-learning SAT solver.

    ``solve`` may be called repeatedly (the incremental API): learned
    clauses, variable activities, and saved phases are retained across
    calls, and ``solve(assumptions=...)`` answers "is the formula SAT
    under these temporary decisions" without permanently asserting
    them.  :meth:`push` / :meth:`pop` bracket groups of
    :meth:`add_clause` additions so a caller can retract clauses
    (learned clauses derived while a group was active are discarded
    with it).  Budgets (``max_conflicts`` / ``max_iterations``)
    compare against *cumulative* stats across all ``solve`` calls.
    DRAT proofs are only meaningful for a single non-incremental
    refutation; clauses popped from the database are not logged.

    Parameters
    ----------
    formula:
        The CNF to solve.  Tautological clauses are dropped; empty
        clauses make the instance trivially UNSAT.
    config:
        Optional :class:`SolverConfig`.
    """

    def __init__(
        self,
        formula: CNF,
        config: Optional[SolverConfig] = None,
        proof: Optional["DratProof"] = None,
        observability=None,
    ):
        self.formula = formula
        self.config = config or SolverConfig()
        #: When tracing is enabled, every search iteration becomes an
        #: ``iteration`` span carrying ``cdcl.propagate`` /
        #: ``cdcl.conflict`` / ``cdcl.restart`` events (see
        #: docs/TELEMETRY.md).  ``None`` keeps the hot loop free of any
        #: instrumentation call.
        self._tracer = (
            observability.tracer
            if observability is not None and observability.tracer.enabled
            else None
        )
        self.stats = SolverStats()
        self.counters = ClauseCounters.for_clauses(formula.num_clauses)
        #: Optional DRAT log; learned clauses, deletions, and the final
        #: empty clause are recorded so UNSAT answers can be verified
        #: independently (see repro.cdcl.proof).  Proofs emitted under
        #: assumptions are not pure refutations and are not logged.
        self.proof = proof

        self._num_vars = formula.num_vars
        n = self._num_vars
        self._values: List[int] = [_UNASSIGNED] * n
        self._levels: List[int] = [0] * n
        self._reasons: List[Optional[_IntClause]] = [None] * n
        self._saved_phase: List[bool] = [self.config.default_phase] * n
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._propagate_head = 0
        self._watches: List[List[_IntClause]] = [[] for _ in range(2 * n)]
        self._clauses: List[_IntClause] = []
        self._learned: List[_IntClause] = []
        self._clause_bump = 1.0
        self._seen: List[bool] = [False] * n
        self._heuristic: DecisionHeuristic = self.config.heuristic_factory()
        self._heuristic.init(n)
        self._rng = np.random.default_rng(self.config.seed)
        self._forced_decisions: Deque[int] = deque()
        self._trivially_unsat = False
        self._root_units: List[int] = []
        self._push_stack: List[_PushMark] = []
        #: Loop-local restart/reduce counters mirrored for checkpointing
        #: (written just before each hook call) and the resume flag that
        #: makes the next ``solve`` continue instead of restarting.
        self._loop_state: Optional[Tuple] = None
        self._resume_pending = False

        for index, clause in enumerate(formula):
            if clause.is_tautology:
                continue
            ilits = [_enc(lit) for lit in clause.lits]
            if not ilits:
                self._trivially_unsat = True
                continue
            record = _IntClause(ilits, learned=False, orig_index=index)
            if len(ilits) == 1:
                self._root_units.append(ilits[0])
            else:
                self._attach(record)
            self._clauses.append(record)

    # ------------------------------------------------------------------
    # Public inspection / steering API (used by the HyQSAT hybrid loop)
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of variables of the input formula."""
        return self._num_vars

    @property
    def decision_level(self) -> int:
        """Current depth of the decision stack."""
        return len(self._trail_lim)

    def value_of_var(self, var: int) -> Optional[bool]:
        """Current value of external variable ``var`` (None if unassigned)."""
        val = self._values[var - 1]
        return None if val == _UNASSIGNED else bool(val)

    def current_assignment(self) -> Assignment:
        """Snapshot of the current partial assignment (external vars)."""
        out = Assignment()
        for var0, val in enumerate(self._values):
            if val != _UNASSIGNED:
                out.assign(var0 + 1, bool(val))
        return out

    def unsatisfied_original_clauses(self) -> List[int]:
        """Indices of original clauses not yet satisfied by the partial
        assignment (the frontend's candidate pool)."""
        out: List[int] = []
        for record in self._clauses:
            if any(self._lit_value(l) == 1 for l in record.lits):
                continue
            out.append(record.orig_index)
        return out

    def set_phase(self, var: int, value: bool) -> None:
        """Force the saved phase of external variable ``var``
        (HyQSAT feedback strategy 2)."""
        self._saved_phase[var - 1] = bool(value)

    def bump_variable(self, var: int, amount: float = 1.0) -> None:
        """Raise the decision priority of external variable ``var``
        (HyQSAT feedback strategy 4)."""
        self._heuristic.bump(var - 1, amount)

    def enqueue_decision(self, lit: Lit) -> None:
        """Queue ``lit`` to be used as the next decision(s), ahead of the
        heuristic (skipped if its variable is already assigned)."""
        self._forced_decisions.append(_enc(lit))

    def clear_decision_queue(self) -> None:
        """Drop all queued forced decisions (a new QA result supersedes
        the guidance of the previous one)."""
        self._forced_decisions.clear()

    @property
    def has_pending_decisions(self) -> bool:
        """Whether hook-enqueued decisions are still waiting."""
        return bool(self._forced_decisions)

    def clause_activity(self, index: int) -> float:
        """Section IV-A activity score of original clause ``index``."""
        return self.counters.activity[index]

    # ------------------------------------------------------------------
    # Incremental API
    # ------------------------------------------------------------------

    @property
    def push_depth(self) -> int:
        """Number of open clause groups."""
        return len(self._push_stack)

    def add_clause(self, clause) -> None:
        """Add an original clause between ``solve`` calls.

        ``clause`` is a :class:`~repro.sat.cnf.Clause` or an iterable
        of :class:`~repro.sat.cnf.Lit` / DIMACS ints.  The clause
        joins the innermost open group (:meth:`push`) and is retracted
        when that group is popped.  The solver backtracks to the root
        level first; tautologies are dropped, an empty clause makes
        the current group unsatisfiable.  The two watched slots are
        the first two literals not false under the root assignment, so
        clause storage stays deterministic for the engine-identity
        gate.
        """
        if isinstance(clause, Clause):
            ext_lits = list(clause.lits)
        else:
            ext_lits = [
                lit if isinstance(lit, Lit) else Lit(int(lit))
                for lit in clause
            ]
        self._backtrack(0)
        ilits = [_enc(lit) for lit in ext_lits]
        present = set(ilits)
        if any((ilit ^ 1) in present for ilit in ilits):  # tautology
            return
        if not ilits:
            self._trivially_unsat = True
            return
        orig_index = len(self.counters.activity)
        self.counters.propagation_visits.append(0)
        self.counters.conflict_visits.append(0)
        self.counters.activity.append(1.0)
        record = _IntClause(ilits, learned=False, orig_index=orig_index)
        record.group = len(self._push_stack)
        self._clauses.append(record)
        if len(ilits) == 1:
            self._root_units.append(ilits[0])
            return
        free = [i for i, l in enumerate(ilits) if self._lit_value(l) != 0]
        if not free:
            # Conflicts with root-implied assignments: the current
            # group is unsatisfiable (the flag is group-scoped via
            # the push markers).
            self._trivially_unsat = True
            return
        if len(free) == 1:
            # Unit under the root assignment for this clause's whole
            # lifetime (root assignments at or below its group are
            # never undone while it exists).
            self._root_units.append(ilits[free[0]])
            return
        i0, i1 = free[0], free[1]
        record.lits = [ilits[i0], ilits[i1]] + [
            l for j, l in enumerate(ilits) if j != i0 and j != i1
        ]
        self._attach(record)

    def learned_clause_lits(
        self, max_len: int = 8, limit: int = 256
    ) -> List[List[int]]:
        """Short learned clauses as signed DIMACS literal lists.

        Every returned clause is implied by the original formula, so a
        cache layer may replay them into any clause-superset instance
        (``add_clause`` seeding).  Shortest first, at most ``limit``
        clauses of at most ``max_len`` literals.
        """
        short = [
            rec.lits
            for rec in self._learned
            if len(rec.lits) <= max_len
        ]
        short.sort(key=len)
        return [
            [_dec(ilit).value for ilit in lits] for lits in short[:limit]
        ]

    def push(self) -> int:
        """Open a clause group; returns the new depth.

        Clauses added afterwards — and everything learned while the
        group is open — are retracted by the matching :meth:`pop`.
        """
        self._backtrack(0)
        self._push_stack.append(
            _PushMark(
                num_clauses=len(self._clauses),
                num_root_units=len(self._root_units),
                num_counters=len(self.counters.activity),
                trail_len=len(self._trail),
                trivially_unsat=self._trivially_unsat,
            )
        )
        return len(self._push_stack)

    def pop(self) -> None:
        """Retract the innermost clause group.

        Removes the group's original clauses, every learned clause
        derived while it was open, and the root assignments made since
        the matching :meth:`push` (they may depend on the retracted
        clauses; surviving implications are re-derived on the next
        ``solve``).  Variable activities and phases are kept.
        """
        if not self._push_stack:
            raise IndexError("pop() without a matching push()")
        self._backtrack(0)
        mark = self._push_stack.pop()
        depth = len(self._push_stack)
        doomed = {id(rec) for rec in self._clauses[mark.num_clauses:]}
        doomed.update(
            id(rec) for rec in self._learned if rec.group > depth
        )
        if doomed:
            self._learned = [
                rec for rec in self._learned if id(rec) not in doomed
            ]
            for watch_list in self._watches:
                watch_list[:] = [
                    rec for rec in watch_list if id(rec) not in doomed
                ]
        del self._clauses[mark.num_clauses:]
        del self._root_units[mark.num_root_units:]
        del self.counters.propagation_visits[mark.num_counters:]
        del self.counters.conflict_visits[mark.num_counters:]
        del self.counters.activity[mark.num_counters:]
        for ilit in reversed(self._trail[mark.trail_len:]):
            var = ilit >> 1
            self._values[var] = _UNASSIGNED
            self._reasons[var] = None
            self._heuristic.on_unassign(var)
        del self._trail[mark.trail_len:]
        self._propagate_head = min(self._propagate_head, len(self._trail))
        self._trivially_unsat = mark.trivially_unsat

    # ------------------------------------------------------------------
    # Checkpoint / resume (repro.service.checkpoint)
    # ------------------------------------------------------------------

    def capture_search_state(self) -> dict:
        """Snapshot the complete search state as a JSON-able dict.

        Must be called from inside an :class:`IterationHook` (the only
        point where the solve loop's restart/reduce counters are
        mirrored); the snapshot is taken *as of the top of the current
        iteration*, so a solver restored from it re-executes that
        iteration and continues bit-identically to an uninterrupted
        run.  Open :meth:`push` groups cannot be checkpointed.
        """
        if self._loop_state is None:
            raise RuntimeError(
                "capture_search_state must be called from an iteration hook"
            )
        if self._push_stack:
            raise RuntimeError("cannot checkpoint with open clause groups")
        clause_ref: Dict[int, List] = {
            id(rec): ["o", i] for i, rec in enumerate(self._clauses)
        }
        clause_ref.update(
            {id(rec): ["l", i] for i, rec in enumerate(self._learned)}
        )

        def ref(rec: Optional[_IntClause]):
            return None if rec is None else clause_ref[id(rec)]

        stats = self.stats.as_dict()
        # Stored as iterations-1: the resumed loop re-increments and
        # re-enters the hook for the iteration being captured.
        stats["iterations"] -= 1
        loop = self._loop_state
        return {
            "engine": "reference",
            "num_vars": self._num_vars,
            "values": list(self._values),
            "levels": list(self._levels),
            "reasons": [ref(rec) for rec in self._reasons],
            "saved_phase": [bool(p) for p in self._saved_phase],
            "trail": list(self._trail),
            "trail_lim": list(self._trail_lim),
            "propagate_head": self._propagate_head,
            "clauses": [
                {"lits": list(rec.lits), "orig_index": rec.orig_index}
                for rec in self._clauses
            ],
            "learned": [
                {"lits": list(rec.lits), "activity": rec.activity}
                for rec in self._learned
            ],
            "watches": [
                [clause_ref[id(rec)] for rec in watch_list]
                for watch_list in self._watches
            ],
            "clause_bump": self._clause_bump,
            "heuristic": self._capture_heuristic(),
            "rng": self._rng.bit_generator.state,
            "forced_decisions": list(self._forced_decisions),
            "counters": {
                "propagation_visits": list(self.counters.propagation_visits),
                "conflict_visits": list(self.counters.conflict_visits),
                "activity": list(self.counters.activity),
            },
            "root_units": list(self._root_units),
            "stats": stats,
            "loop": [loop[0], loop[1], loop[2], loop[3]],
        }

    def restore_search_state(self, state: dict) -> None:
        """Rebuild the search state captured by
        :meth:`capture_search_state`; the next :meth:`solve` call (no
        assumptions) resumes mid-search instead of restarting."""
        if state.get("engine") != "reference":
            raise ValueError(
                f"checkpoint engine {state.get('engine')!r} is not 'reference'"
            )
        if state.get("num_vars") != self._num_vars:
            raise ValueError("checkpoint does not match this formula")
        if self._push_stack:
            raise RuntimeError("cannot restore over open clause groups")
        self._clauses = [
            _IntClause(
                list(entry["lits"]), learned=False,
                orig_index=entry["orig_index"],
            )
            for entry in state["clauses"]
        ]
        self._learned = []
        for entry in state["learned"]:
            record = _IntClause(list(entry["lits"]), learned=True, orig_index=-1)
            record.activity = entry["activity"]
            self._learned.append(record)

        def deref(ref) -> Optional[_IntClause]:
            if ref is None:
                return None
            kind, index = ref
            return self._clauses[index] if kind == "o" else self._learned[index]

        self._watches = [
            [deref(ref) for ref in watch_list]
            for watch_list in state["watches"]
        ]
        self._values = list(state["values"])
        self._levels = list(state["levels"])
        self._reasons = [deref(ref) for ref in state["reasons"]]
        self._saved_phase = [bool(p) for p in state["saved_phase"]]
        self._trail = list(state["trail"])
        self._trail_lim = list(state["trail_lim"])
        self._propagate_head = state["propagate_head"]
        self._clause_bump = state["clause_bump"]
        self._seen = [False] * self._num_vars
        self._restore_heuristic(state["heuristic"])
        self._rng = np.random.default_rng()
        self._rng.bit_generator.state = state["rng"]
        self._forced_decisions = deque(state["forced_decisions"])
        counters = state["counters"]
        self.counters = ClauseCounters(
            propagation_visits=list(counters["propagation_visits"]),
            conflict_visits=list(counters["conflict_visits"]),
            activity=list(counters["activity"]),
        )
        self._root_units = list(state["root_units"])
        for name, value in state["stats"].items():
            setattr(self.stats, name, value)
        loop = state["loop"]
        self._loop_state = (loop[0], loop[1], loop[2], loop[3])
        self._resume_pending = True

    def _capture_heuristic(self) -> dict:
        heuristic = self._heuristic
        if isinstance(heuristic, VsidsHeuristic):
            return {
                "kind": "vsids",
                "scores": list(heuristic._scores),
                "bump": heuristic._bump,
                "heap": list(heuristic._heap._heap),
                "pos": list(heuristic._heap._pos),
            }
        if isinstance(heuristic, ChbHeuristic):
            return {
                "kind": "chb",
                "scores": list(heuristic._scores),
                "last_conflict": list(heuristic._last_conflict),
                "step": heuristic._step,
                "conflicts": heuristic._conflicts,
                "heap": list(heuristic._heap._heap),
                "pos": list(heuristic._heap._pos),
            }
        raise RuntimeError(
            "checkpointing supports the built-in VSIDS/CHB heuristics only"
        )

    def _restore_heuristic(self, data: dict) -> None:
        heuristic = self._heuristic
        kind = data.get("kind")
        if kind == "vsids":
            if not isinstance(heuristic, VsidsHeuristic):
                raise ValueError("checkpoint heuristic mismatch (vsids)")
            # In-place updates keep the score list shared with the heap.
            heuristic._scores[:] = data["scores"]
            heuristic._bump = data["bump"]
            heuristic._heap._heap[:] = data["heap"]
            heuristic._heap._pos[:] = data["pos"]
        elif kind == "chb":
            if not isinstance(heuristic, ChbHeuristic):
                raise ValueError("checkpoint heuristic mismatch (chb)")
            heuristic._scores[:] = data["scores"]
            heuristic._last_conflict[:] = data["last_conflict"]
            heuristic._step = data["step"]
            heuristic._conflicts = data["conflicts"]
            heuristic._heap._heap[:] = data["heap"]
            heuristic._heap._pos[:] = data["pos"]
        else:
            raise ValueError(f"unknown checkpoint heuristic {kind!r}")

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[Lit] = (),
        hook: Optional[IterationHook] = None,
    ) -> SolverResult:
        """Run the CDCL search.

        Parameters
        ----------
        assumptions:
            Literals decided (in order) before any heuristic decision.
            If refuted, the result is UNSAT *under assumptions*.
        hook:
            Optional :class:`IterationHook` consulted every iteration.
        """
        if self._trivially_unsat:
            self._record_refutation(assumptions)
            return SolverResult(SolverStatus.UNSAT, None, self.stats)

        resuming = self._resume_pending
        self._resume_pending = False
        if resuming:
            if assumptions:
                raise ValueError(
                    "cannot resume a checkpointed solve with assumptions"
                )
            # The restored snapshot is an exact mid-search state: skip
            # the re-entry reset and pick the restart/reduce window up
            # where the checkpoint left it.
            assumption_lits: List[int] = []
            (
                max_learned,
                restart_num,
                conflicts_until_restart,
                conflicts_in_window,
            ) = self._loop_state
        else:
            self._backtrack(0)  # re-entry: drop any previous call's search
            # Re-scan root watch lists: a prior call may have stopped with a
            # root-falsified clause behind the propagation head (e.g. after
            # an UNSAT result), which would otherwise stay invisible.
            self._propagate_head = 0
            for unit in self._root_units:
                value = self._lit_value(unit)
                if value == 0:
                    self._record_refutation(assumptions)
                    return SolverResult(SolverStatus.UNSAT, None, self.stats)
                if value == _UNASSIGNED:
                    self._assign(unit, reason=None)

            assumption_lits = [_enc(a) for a in assumptions]
            max_learned = max(
                100.0, self.config.learntsize_factor * max(1, len(self._clauses))
            )
            restart_num = 0
            conflicts_until_restart = self._next_restart_interval(restart_num)
            conflicts_in_window = 0

        tracer = self._tracer
        while True:
            if (
                self.config.max_conflicts is not None
                and self.stats.conflicts >= self.config.max_conflicts
            ) or (
                self.config.max_iterations is not None
                and self.stats.iterations >= self.config.max_iterations
            ):
                return SolverResult(SolverStatus.UNKNOWN, None, self.stats)

            self.stats.iterations += 1
            span = (
                tracer.start_span("iteration", index=self.stats.iterations)
                if tracer is not None
                else None
            )
            try:
                if hook is not None:
                    # Mirror the loop-locals so a hook can checkpoint
                    # this exact iteration (capture_search_state).
                    self._loop_state = (
                        max_learned,
                        restart_num,
                        conflicts_until_restart,
                        conflicts_in_window,
                    )
                    proposed = hook.on_iteration(self)
                    if proposed is not None and proposed.satisfies(self.formula):
                        return SolverResult(SolverStatus.SAT, proposed, self.stats)

                conflict = self._propagate()
                if tracer is not None:
                    tracer.event(
                        "cdcl.propagate",
                        trail=len(self._trail),
                        level=self.decision_level,
                    )
                if conflict is not None:
                    self.stats.conflicts += 1
                    conflicts_in_window += 1
                    if self.decision_level == 0:
                        self._record_refutation(assumptions)
                        return SolverResult(SolverStatus.UNSAT, None, self.stats)
                    conflict_level = self.decision_level
                    learned_lits, backjump = self._analyze(conflict)
                    self._backtrack(backjump)
                    self._learn(learned_lits)
                    self._decay_clause_activity()
                    self._heuristic.after_conflict()
                    if tracer is not None:
                        tracer.event(
                            "cdcl.conflict",
                            level=conflict_level,
                            backjump=backjump,
                            learned_size=len(learned_lits),
                        )
                    continue

                if (
                    conflicts_until_restart is not None
                    and conflicts_in_window >= conflicts_until_restart
                ):
                    restart_num += 1
                    conflicts_in_window = 0
                    conflicts_until_restart = self._next_restart_interval(restart_num)
                    self.stats.restarts += 1
                    self._backtrack(0)
                    if tracer is not None:
                        tracer.event("cdcl.restart", number=restart_num)
                    continue

                if len(self._learned) >= max_learned + len(self._trail):
                    self._reduce_learned_db()
                    max_learned *= self.config.learntsize_inc

                next_lit = self._pick_branch(assumption_lits)
                if next_lit is None:
                    return SolverResult(
                        SolverStatus.SAT, self._model(), self.stats
                    )
                if next_lit == -1:  # assumption conflict
                    return SolverResult(SolverStatus.UNSAT, None, self.stats)
                self.stats.decisions += 1
                self._trail_lim.append(len(self._trail))
                self.stats.max_decision_level = max(
                    self.stats.max_decision_level, self.decision_level
                )
                self._assign(next_lit, reason=None)
            finally:
                if span is not None:
                    span.end()

    # ------------------------------------------------------------------
    # Core machinery
    # ------------------------------------------------------------------

    def _lit_value(self, ilit: int) -> int:
        """1 (true), 0 (false), or _UNASSIGNED for an internal literal."""
        val = self._values[ilit >> 1]
        if val == _UNASSIGNED:
            return _UNASSIGNED
        return val ^ (ilit & 1)

    def _assign(self, ilit: int, reason: Optional[_IntClause]) -> None:
        var = ilit >> 1
        self._values[var] = 1 - (ilit & 1)
        self._levels[var] = self.decision_level
        self._reasons[var] = reason
        self._trail.append(ilit)
        if self.config.phase_saving:
            self._saved_phase[var] = bool(1 - (ilit & 1))
        self._heuristic.on_assign(var)

    def _attach(self, record: _IntClause) -> None:
        self._watches[record.lits[0] ^ 1].append(record)
        self._watches[record.lits[1] ^ 1].append(record)

    def _propagate(self) -> Optional[_IntClause]:
        """Two-watched-literal propagation; returns a conflicting clause
        or None when a fixpoint is reached."""
        counters = self.counters.propagation_visits
        while self._propagate_head < len(self._trail):
            ilit = self._trail[self._propagate_head]
            self._propagate_head += 1
            false_lit = ilit ^ 1
            watch_list = self._watches[ilit]
            kept: List[_IntClause] = []
            i = 0
            num = len(watch_list)
            while i < num:
                record = watch_list[i]
                i += 1
                lits = record.lits
                if record.orig_index >= 0:
                    counters[record.orig_index] += 1
                # Ensure the false literal is in slot 1.
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if self._lit_value(first) == 1:
                    kept.append(record)
                    continue
                # Look for a new literal to watch.
                moved = False
                for k in range(2, len(lits)):
                    if self._lit_value(lits[k]) != 0:
                        lits[1], lits[k] = lits[k], lits[1]
                        self._watches[lits[1] ^ 1].append(record)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(record)
                if self._lit_value(first) == 0:
                    # Conflict: keep remaining watchers, restore list.
                    kept.extend(watch_list[i:])
                    watch_list[:] = kept
                    self._propagate_head = len(self._trail)
                    return record
                # Unit: propagate first.
                self.stats.propagations += 1
                self._assign(first, reason=record)
            watch_list[:] = kept
        return None

    def _analyze(self, conflict: _IntClause) -> Tuple[List[int], int]:
        """First-UIP conflict analysis.

        Returns the learned clause (asserting literal first) and the
        backjump level.  Bumps variable activities, clause activities,
        and — for original clauses — the Section IV-A activity score
        and conflict visit counter.
        """
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = self._seen
        counter = 0
        ilit = -1
        index = len(self._trail) - 1
        record: Optional[_IntClause] = conflict
        path_seen: List[int] = []

        while True:
            if record is not None:
                self._bump_clause(record)
                for lit_k in record.lits:
                    if ilit >= 0 and lit_k == ilit:
                        continue
                    var_k = lit_k >> 1
                    if seen[var_k] or self._levels[var_k] == 0:
                        continue
                    seen[var_k] = True
                    path_seen.append(var_k)
                    self._heuristic.on_conflict_var(var_k)
                    if self._levels[var_k] >= self.decision_level:
                        counter += 1
                    else:
                        learned.append(lit_k)
            # Walk the trail back to the next marked literal.
            while not seen[self._trail[index] >> 1]:
                index -= 1
            ilit = self._trail[index]
            var = ilit >> 1
            seen[var] = False
            counter -= 1
            index -= 1
            if counter <= 0:
                break
            record = self._reasons[var]

        learned[0] = ilit ^ 1
        # Cheap literal minimisation: drop literals whose reason's other
        # literals are all already present or at level 0.
        marked = {l >> 1 for l in learned[1:]}
        minimized = [learned[0]]
        for lit_k in learned[1:]:
            reason = self._reasons[lit_k >> 1]
            if reason is None:
                minimized.append(lit_k)
                continue
            redundant = all(
                (other >> 1) in marked
                or self._levels[other >> 1] == 0
                or (other >> 1) == (lit_k >> 1)
                for other in reason.lits
            )
            if not redundant:
                minimized.append(lit_k)
        learned = minimized

        for var in path_seen:
            seen[var] = False

        if len(learned) == 1:
            backjump = 0
        else:
            # Second-highest level among learned literals.
            max_i = 1
            for k in range(2, len(learned)):
                if self._levels[learned[k] >> 1] > self._levels[learned[max_i] >> 1]:
                    max_i = k
            learned[1], learned[max_i] = learned[max_i], learned[1]
            backjump = self._levels[learned[1] >> 1]
        return learned, backjump

    def _bump_clause(self, record: _IntClause) -> None:
        if record.learned:
            record.activity += self._clause_bump
            if record.activity > 1e20:
                for learned in self._learned:
                    learned.activity *= 1e-20
                self._clause_bump *= 1e-20
        elif record.orig_index >= 0:
            self.counters.conflict_visits[record.orig_index] += 1
            self.counters.activity[record.orig_index] += self.config.activity_bump

    def _decay_clause_activity(self) -> None:
        self._clause_bump /= self.config.clause_decay

    def _backtrack(self, level: int) -> None:
        if self.decision_level <= level:
            return
        boundary = self._trail_lim[level]
        for ilit in reversed(self._trail[boundary:]):
            var = ilit >> 1
            self._values[var] = _UNASSIGNED
            self._reasons[var] = None
            self._heuristic.on_unassign(var)
        del self._trail[boundary:]
        del self._trail_lim[level:]
        self._propagate_head = min(self._propagate_head, len(self._trail))

    def _learn(self, learned_lits: List[int]) -> None:
        self.stats.learned_clauses += 1
        if self.proof is not None:
            self.proof.add_clause(_dec(l).value for l in learned_lits)
        if len(learned_lits) == 1:
            self._assign(learned_lits[0], reason=None)
            return
        record = _IntClause(list(learned_lits), learned=True, orig_index=-1)
        record.group = len(self._push_stack)
        record.activity = self._clause_bump
        self._attach(record)
        self._learned.append(record)
        self._assign(learned_lits[0], reason=record)

    def _reduce_learned_db(self) -> None:
        """Drop the lower-activity half of removable learned clauses."""
        locked = {
            id(self._reasons[ilit >> 1])
            for ilit in self._trail
            if self._reasons[ilit >> 1] is not None
        }
        removable = [
            rec for rec in self._learned if len(rec.lits) > 2 and id(rec) not in locked
        ]
        removable.sort(key=lambda rec: rec.activity)
        to_remove = set(id(rec) for rec in removable[: len(removable) // 2])
        if not to_remove:
            return
        self.stats.deleted_clauses += len(to_remove)
        if self.proof is not None:
            for rec in removable:
                if id(rec) in to_remove:
                    self.proof.delete_clause(_dec(l).value for l in rec.lits)
        self._learned = [rec for rec in self._learned if id(rec) not in to_remove]
        for watch_list in self._watches:
            watch_list[:] = [rec for rec in watch_list if id(rec) not in to_remove]

    def _pick_branch(self, assumptions: List[int]) -> Optional[int]:
        """Next decision literal.

        Returns None when all variables are assigned (model found), -1
        on an assumption refuted by the current assignment, otherwise
        an internal literal.  Forced (hook-enqueued) decisions take
        precedence, then assumptions, then the heuristic.
        """
        while self._forced_decisions:
            ilit = self._forced_decisions.popleft()
            if self._lit_value(ilit) == _UNASSIGNED:
                return ilit
        while self.decision_level < len(assumptions):
            ilit = assumptions[self.decision_level]
            value = self._lit_value(ilit)
            if value == 0:
                return -1
            if value == _UNASSIGNED:
                return ilit
            self._trail_lim.append(len(self._trail))  # silently satisfied level
        assigned = [v != _UNASSIGNED for v in self._values]
        if (
            self.config.random_decision_freq > 0.0
            and self._rng.random() < self.config.random_decision_freq
        ):
            free = [v for v in range(self._num_vars) if not assigned[v]]
            if free:
                var = int(self._rng.choice(free))
                return 2 * var + (0 if self._saved_phase[var] else 1)
        var = self._heuristic.pick(assigned)
        if var is None:
            return None
        return 2 * var + (0 if self._saved_phase[var] else 1)

    def _record_refutation(self, assumptions: Sequence[Lit]) -> None:
        """Close the DRAT log with the empty clause (refutations under
        assumptions are conditional and deliberately not logged)."""
        if self.proof is not None and not assumptions:
            self.proof.add_empty_clause()

    def _next_restart_interval(self, restart_num: int) -> Optional[int]:
        """Conflict budget of the next restart window (None = no restarts)."""
        strategy = self.config.restart_strategy
        if strategy == "none":
            return None
        if strategy == "luby":
            return self.config.luby_base * luby(restart_num + 1)
        return int(
            self.config.geometric_first * self.config.geometric_factor ** restart_num
        )

    def _model(self) -> Assignment:
        out = Assignment()
        for var0, val in enumerate(self._values):
            out.assign(var0 + 1, bool(val) if val != _UNASSIGNED else False)
        return out


def solve(formula: CNF, config: Optional[SolverConfig] = None) -> SolverResult:
    """One-shot convenience wrapper around :class:`CdclSolver`."""
    return CdclSolver(formula, config=config).solve()
