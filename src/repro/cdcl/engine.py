"""CDCL engine registry: select reference or native-kernel solver.

Two engines implement the same solver contract:

- ``"reference"`` — :class:`~repro.cdcl.solver.CdclSolver`, the pure
  Python implementation.  Always available; the semantic ground truth.
- ``"fast"`` — :class:`~repro.cdcl.fast.FastCdclSolver`, flat-buffer
  state driven by the C kernel.  Bit-identical to the reference but
  needs a C compiler (once, cached) and one of the built-in
  VSIDS/CHB heuristics.

:func:`create_solver` is the one construction point used by presets,
the hybrid loop, and the service layer; it degrades to the reference
engine (with a warning) when the fast engine cannot run.
"""

from __future__ import annotations

import warnings
from typing import Optional

from repro.cdcl.fast import FastCdclSolver, FastEngineError, fast_engine_supports
from repro.cdcl.solver import CdclSolver, SolverConfig

__all__ = ["ENGINES", "available_engines", "create_solver", "resolve_engine"]

#: Engine name -> solver class.
ENGINES = {
    "reference": CdclSolver,
    "fast": FastCdclSolver,
}


def available_engines() -> tuple:
    """Engine names usable right now (``fast`` only with a kernel)."""
    names = ["reference"]
    ok, _ = fast_engine_supports(None)
    if ok:
        names.append("fast")
    return tuple(names)


def resolve_engine(engine: str, config: Optional[SolverConfig] = None) -> str:
    """Validate ``engine`` and downgrade ``fast`` when unusable.

    Unknown names raise ``ValueError``.  When ``fast`` is requested but
    the kernel cannot be built or the config uses a custom heuristic, a
    :class:`RuntimeWarning` is emitted and ``"reference"`` is returned —
    results are identical either way, only slower.
    """
    if engine not in ENGINES:
        raise ValueError(
            f"unknown CDCL engine {engine!r}; expected one of {sorted(ENGINES)}"
        )
    if engine == "fast":
        ok, reason = fast_engine_supports(config)
        if not ok:
            warnings.warn(
                f"fast CDCL engine unavailable ({reason}); "
                "falling back to the reference engine",
                RuntimeWarning,
                stacklevel=2,
            )
            return "reference"
    return engine


def create_solver(
    formula,
    engine: str = "reference",
    config: Optional[SolverConfig] = None,
    proof=None,
    observability=None,
):
    """Build a solver for ``formula`` with the requested engine.

    Falls back to the reference engine (see :func:`resolve_engine`)
    rather than failing, so callers can request ``fast``
    unconditionally.
    """
    engine = resolve_engine(engine, config)
    cls = ENGINES[engine]
    try:
        return cls(
            formula, config=config, proof=proof, observability=observability
        )
    except FastEngineError as exc:  # pragma: no cover - race with probe
        warnings.warn(
            f"fast CDCL engine failed to initialise ({exc}); "
            "falling back to the reference engine",
            RuntimeWarning,
            stacklevel=2,
        )
        return CdclSolver(
            formula, config=config, proof=proof, observability=observability
        )
