"""The Luby restart sequence.

The reluctant-doubling sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ... of
Luby, Sinclair and Zuckerman is the restart schedule MiniSAT (and most
modern CDCL solvers) multiply by a base interval.
"""

from __future__ import annotations

from typing import Iterator


def luby(i: int) -> int:
    """The i-th element (1-based) of the Luby sequence.

    Uses the closed form: if ``i = 2^k - 1`` the value is ``2^(k-1)``;
    otherwise recurse on ``i - 2^(k-1) + 1`` for the largest k with
    ``2^(k-1) <= i``.
    """
    if i < 1:
        raise ValueError(f"Luby index is 1-based, got {i}")
    x = i - 1  # the classic formulation is 0-based
    size, seq = 1, 0
    while size < x + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != x:
        size = (size - 1) >> 1
        seq -= 1
        x %= size
    return 1 << seq


def luby_sequence(base: int = 1) -> Iterator[int]:
    """Infinite generator of ``base * luby(i)`` for i = 1, 2, 3, ..."""
    if base < 1:
        raise ValueError(f"base must be >= 1, got {base}")
    i = 1
    while True:
        yield base * luby(i)
        i += 1
