/* Native CDCL core.
 *
 * A literal C port of the hot loops of repro/cdcl/solver.py (the
 * reference engine): two-watched-literal propagation, first-UIP
 * conflict analysis with the same cheap literal minimisation, trail
 * backtracking, and the VSIDS/CHB decision heuristics backed by the
 * same indexed binary max-heap.  Every data structure lives in
 * NumPy-owned flat buffers handed over as raw pointers (see
 * repro/cdcl/native.py); this file never allocates — when the run
 * loop is about to outgrow a buffer it returns EV_GROW and the
 * Python wrapper reallocates and re-enters.
 *
 * Bit-identity contract: for the same formula, config, and seed the
 * fast engine must produce the same model, conflict count, learned
 * clauses, and per-clause visit counters as the reference.  That is
 * only possible if every ordering decision matches the Python code
 * exactly, so each function below mirrors its Python twin
 * statement-for-statement:
 *
 * - watch lists are order-preserving singly-linked lists scanned
 *   front to back, with moved watchers unlinked in place and new
 *   watchers appended at the tail (Python: list filter + append);
 * - clause literal slots are swapped exactly where the reference
 *   swaps them (slot order feeds the analysis iteration order);
 * - heap sift comparisons keep the reference's >= / > asymmetry so
 *   equal-score ties break identically;
 * - float updates (activity bumps, decays, rescales) run in the same
 *   sequence, which makes them bit-identical under IEEE-754 doubles
 *   (build without -ffast-math; see native.py).
 *
 * The Python wrapper (repro/cdcl/fast.py) drives either one
 * iteration at a time (hook/trace/proof mode) or the budgeted
 * kernel_run loop (no-hook mode), and owns everything cold: restart
 * scheduling, clause-DB reduction policy, assumptions, forced
 * decisions, and the incremental push/pop bookkeeping.
 */

#include <stdint.h>

#define UNASSIGNED (-1)
#define NO_REASON (-1)
#define NIL (-1)

/* kernel_run exit events (mirrored in repro/cdcl/native.py). */
#define EV_SAT 1
#define EV_ROOT_CONFLICT 2
#define EV_BUDGET 3
#define EV_RESTART_DUE 4
#define EV_REDUCE_DUE 5
#define EV_NEED_DECISION 6
#define EV_GROW 7

#define HEUR_VSIDS 0
#define HEUR_CHB 1

/* Field order must match _CSolver in repro/cdcl/native.py exactly.
 * Only 8-byte members (pointers, int64_t, double) so there is no
 * padding to keep in sync. */
typedef struct {
    /* assignment state */
    int64_t n_vars;
    int8_t *values;    /* -1 unassigned, 0 false, 1 true (per var) */
    int32_t *levels;
    int32_t *reasons;  /* clause index or NO_REASON */
    uint8_t *phases;   /* saved phase per var */
    int32_t *trail;
    int64_t trail_len;
    int32_t *trail_lim;
    int64_t n_levels;  /* current decision level */
    int64_t prop_head;
    uint8_t *seen;     /* analysis scratch, always false outside analyze */
    uint8_t *mark;     /* minimisation scratch, ditto */
    int32_t *path;     /* analysis scratch: vars flagged seen */
    /* clause store */
    int32_t *pool;
    int64_t pool_len;
    int64_t pool_cap;
    int32_t *c_start;
    int32_t *c_size;
    int32_t *c_orig;   /* original-clause index or -1 for learned */
    uint8_t *c_learned;
    uint8_t *c_dead;
    double *c_act;     /* learned-clause activity */
    int64_t n_clauses;
    int64_t clause_cap;
    int32_t *learned_list; /* learned clause indices in learn order */
    int64_t n_learned;
    /* watch lists: one singly-linked node chain per literal */
    int32_t *w_head;
    int32_t *w_tail;
    int32_t *node_next;
    int32_t *node_clause;
    int64_t node_len;   /* high-water node count */
    int64_t node_cap;
    int64_t free_head;  /* recycled node chain */
    /* per-original-clause counters (ClauseCounters) */
    int64_t *prop_visits;
    int64_t *conf_visits;
    double *orig_act;
    /* stats (SolverStats) */
    int64_t propagations;
    int64_t conflicts;
    int64_t decisions;
    int64_t iterations;
    int64_t restarts;
    int64_t learned_total;
    int64_t deleted_total;
    int64_t max_level;
    /* clause activity bookkeeping */
    double clause_bump;
    double clause_decay;
    double orig_bump;   /* SolverConfig.activity_bump */
    /* config */
    int64_t phase_saving;
    /* heuristic */
    int64_t heur_kind;
    double *scores;
    int32_t *heap;
    int32_t *heap_pos;
    int64_t heap_len;
    double vs_bump;
    double vs_decay;
    double chb_step;
    double chb_step_min;
    double chb_step_decay;
    int64_t chb_conflicts;
    int64_t *chb_last;
    /* analysis output */
    int32_t *out_learned;
    int64_t out_learned_len;
    int64_t out_backjump;
    /* run-loop control */
    int64_t resume_at_pick;
    int64_t pending_conflict; /* conflict stashed across EV_GROW */
    int64_t max_conflicts;   /* -1 = unlimited */
    int64_t max_iterations;  /* -1 = unlimited */
    int64_t restart_limit;   /* conflicts in window before restart; -1 = never */
    int64_t conflicts_in_window;
    double max_learned;      /* reduce threshold (float, as in Python) */
    int64_t n_assumptions;
} CSolver;

/* ------------------------------------------------------------------ */
/* Indexed max-heap (mirror of heuristics._IndexedMaxHeap)            */
/* ------------------------------------------------------------------ */

static void sift_up(CSolver *s, int64_t pos) {
    int32_t *heap = s->heap;
    double *scores = s->scores;
    int32_t *positions = s->heap_pos;
    int32_t var = heap[pos];
    double score = scores[var];
    while (pos > 0) {
        int64_t parent = (pos - 1) >> 1;
        if (scores[heap[parent]] >= score)
            break;
        heap[pos] = heap[parent];
        positions[heap[pos]] = (int32_t)pos;
        pos = parent;
    }
    heap[pos] = var;
    positions[var] = (int32_t)pos;
}

static void sift_down(CSolver *s, int64_t pos) {
    int32_t *heap = s->heap;
    double *scores = s->scores;
    int32_t *positions = s->heap_pos;
    int64_t size = s->heap_len;
    int32_t var = heap[pos];
    double score = scores[var];
    for (;;) {
        int64_t child = 2 * pos + 1;
        if (child >= size)
            break;
        int64_t right = child + 1;
        if (right < size && scores[heap[right]] > scores[heap[child]])
            child = right;
        if (scores[heap[child]] <= score)
            break;
        heap[pos] = heap[child];
        positions[heap[pos]] = (int32_t)pos;
        pos = child;
    }
    heap[pos] = var;
    positions[var] = (int32_t)pos;
}

static void heap_push(CSolver *s, int32_t var) {
    if (s->heap_pos[var] >= 0)
        return;
    s->heap[s->heap_len] = var;
    s->heap_pos[var] = (int32_t)s->heap_len;
    s->heap_len += 1;
    sift_up(s, s->heap_len - 1);
}

static int32_t heap_pop(CSolver *s) {
    int32_t top = s->heap[0];
    s->heap_len -= 1;
    int32_t last = s->heap[s->heap_len];
    s->heap_pos[top] = -1;
    if (s->heap_len > 0) {
        s->heap[0] = last;
        s->heap_pos[last] = 0;
        sift_down(s, 0);
    }
    return top;
}

static void heap_update(CSolver *s, int32_t var) {
    int32_t pos = s->heap_pos[var];
    if (pos < 0)
        return;
    sift_up(s, pos);
    sift_down(s, s->heap_pos[var]);
}

static void heap_rescore_all(CSolver *s) {
    for (int64_t i = s->heap_len / 2 - 1; i >= 0; i--)
        sift_down(s, i);
}

/* ------------------------------------------------------------------ */
/* Heuristics (mirror of VsidsHeuristic / ChbHeuristic)               */
/* ------------------------------------------------------------------ */

#define VSIDS_RESCALE_LIMIT 1e100

static void vsids_bump_score(CSolver *s, int32_t var, double amount) {
    s->scores[var] += amount;
    if (s->scores[var] > VSIDS_RESCALE_LIMIT) {
        double inv = 1.0 / VSIDS_RESCALE_LIMIT;
        for (int64_t i = 0; i < s->n_vars; i++)
            s->scores[i] *= inv;
        s->vs_bump *= inv;
        heap_rescore_all(s);
    } else {
        heap_update(s, var);
    }
}

static void chb_reward(CSolver *s, int32_t var, double multiplier) {
    int64_t age = s->chb_conflicts - s->chb_last[var] + 1;
    double reward = multiplier / (double)age;
    s->scores[var] =
        (1.0 - s->chb_step) * s->scores[var] + s->chb_step * reward;
    heap_update(s, var);
}

static void heur_on_assign(CSolver *s, int32_t var) {
    if (s->heur_kind == HEUR_CHB)
        chb_reward(s, var, 0.9);
}

static void heur_on_unassign(CSolver *s, int32_t var) {
    heap_push(s, var);
}

static void heur_on_conflict_var(CSolver *s, int32_t var) {
    if (s->heur_kind == HEUR_VSIDS) {
        vsids_bump_score(s, var, s->vs_bump);
    } else {
        s->chb_last[var] = s->chb_conflicts;
        chb_reward(s, var, 1.0);
    }
}

static void heur_after_conflict(CSolver *s) {
    if (s->heur_kind == HEUR_VSIDS) {
        s->vs_bump /= s->vs_decay;
    } else {
        s->chb_conflicts += 1;
        if (s->chb_step > s->chb_step_min) {
            double next = s->chb_step - s->chb_step_decay;
            s->chb_step = next > s->chb_step_min ? next : s->chb_step_min;
        }
    }
}

void kernel_bump_variable(CSolver *s, int64_t var, double amount) {
    if (s->heur_kind == HEUR_VSIDS) {
        vsids_bump_score(s, (int32_t)var, amount * s->vs_bump);
    } else {
        s->scores[var] += amount;
        heap_update(s, (int32_t)var);
    }
}

/* ------------------------------------------------------------------ */
/* Assignment / trail                                                 */
/* ------------------------------------------------------------------ */

static int lit_value(const CSolver *s, int32_t lit) {
    int8_t val = s->values[lit >> 1];
    if (val == UNASSIGNED)
        return UNASSIGNED;
    return val ^ (lit & 1);
}

static void assign(CSolver *s, int32_t lit, int32_t reason) {
    int32_t var = lit >> 1;
    s->values[var] = (int8_t)(1 - (lit & 1));
    s->levels[var] = (int32_t)s->n_levels;
    s->reasons[var] = reason;
    s->trail[s->trail_len++] = lit;
    if (s->phase_saving)
        s->phases[var] = (uint8_t)(1 - (lit & 1));
    heur_on_assign(s, var);
}

void kernel_assign_root(CSolver *s, int64_t lit) {
    assign(s, (int32_t)lit, NO_REASON);
}

void kernel_new_level(CSolver *s) {
    s->trail_lim[s->n_levels] = (int32_t)s->trail_len;
    s->n_levels += 1;
}

void kernel_decide(CSolver *s, int64_t lit) {
    s->decisions += 1;
    kernel_new_level(s);
    if (s->n_levels > s->max_level)
        s->max_level = s->n_levels;
    assign(s, (int32_t)lit, NO_REASON);
}

void kernel_backtrack(CSolver *s, int64_t level) {
    if (s->n_levels <= level)
        return;
    int64_t boundary = s->trail_lim[level];
    for (int64_t i = s->trail_len - 1; i >= boundary; i--) {
        int32_t var = s->trail[i] >> 1;
        s->values[var] = UNASSIGNED;
        s->reasons[var] = NO_REASON;
        heur_on_unassign(s, var);
    }
    s->trail_len = boundary;
    s->n_levels = level;
    if (s->prop_head > s->trail_len)
        s->prop_head = s->trail_len;
}

/* Root-trail truncation for the incremental pop(): unassign every
 * root assignment at or after ``boundary`` (newest first, like a
 * backtrack). */
void kernel_truncate_root(CSolver *s, int64_t boundary) {
    for (int64_t i = s->trail_len - 1; i >= boundary; i--) {
        int32_t var = s->trail[i] >> 1;
        s->values[var] = UNASSIGNED;
        s->reasons[var] = NO_REASON;
        heur_on_unassign(s, var);
    }
    if (s->trail_len > boundary)
        s->trail_len = boundary;
    if (s->prop_head > s->trail_len)
        s->prop_head = s->trail_len;
}

/* ------------------------------------------------------------------ */
/* Watch lists                                                        */
/* ------------------------------------------------------------------ */

static int32_t node_alloc(CSolver *s) {
    if (s->free_head != NIL) {
        int32_t node = (int32_t)s->free_head;
        s->free_head = s->node_next[node];
        return node;
    }
    return (int32_t)s->node_len++;
}

static void watch_append(CSolver *s, int32_t lit, int32_t node) {
    s->node_next[node] = NIL;
    if (s->w_tail[lit] == NIL) {
        s->w_head[lit] = node;
    } else {
        s->node_next[s->w_tail[lit]] = node;
    }
    s->w_tail[lit] = node;
}

/* Attach a clause on its first two literal slots (MiniSAT
 * convention; mirror of _attach). */
void kernel_attach_clause(CSolver *s, int64_t ci) {
    int32_t *lits = s->pool + s->c_start[ci];
    int32_t node0 = node_alloc(s);
    s->node_clause[node0] = (int32_t)ci;
    watch_append(s, lits[0] ^ 1, node0);
    int32_t node1 = node_alloc(s);
    s->node_clause[node1] = (int32_t)ci;
    watch_append(s, lits[1] ^ 1, node1);
}

/* Register clause metadata written by Python into the flat arrays
 * and attach its watches when it has >= 2 literals. */
void kernel_add_clause(CSolver *s, int64_t start, int64_t size,
                       int64_t orig_index, int64_t learned) {
    int64_t ci = s->n_clauses++;
    s->c_start[ci] = (int32_t)start;
    s->c_size[ci] = (int32_t)size;
    s->c_orig[ci] = (int32_t)orig_index;
    s->c_learned[ci] = (uint8_t)learned;
    s->c_dead[ci] = 0;
    s->c_act[ci] = 0.0;
    if (size >= 2)
        kernel_attach_clause(s, ci);
}

/* Remove every clause flagged in ``remove`` from the watch lists
 * (order-preserving filter, like the reference's list rebuild), drop
 * them from the learned list, and mark them dead. */
void kernel_detach_clauses(CSolver *s, const uint8_t *remove) {
    for (int64_t lit = 0; lit < 2 * s->n_vars; lit++) {
        int32_t node = s->w_head[lit];
        int32_t prev = NIL;
        while (node != NIL) {
            int32_t next = s->node_next[node];
            if (remove[s->node_clause[node]]) {
                if (prev == NIL)
                    s->w_head[lit] = next;
                else
                    s->node_next[prev] = next;
                if (s->w_tail[lit] == node)
                    s->w_tail[lit] = prev;
                s->node_next[node] = (int32_t)s->free_head;
                s->free_head = node;
            } else {
                prev = node;
            }
            node = next;
        }
    }
    int64_t kept = 0;
    for (int64_t i = 0; i < s->n_learned; i++) {
        int32_t ci = s->learned_list[i];
        if (!remove[ci])
            s->learned_list[kept++] = ci;
    }
    s->n_learned = kept;
    for (int64_t ci = 0; ci < s->n_clauses; ci++)
        if (remove[ci])
            s->c_dead[ci] = 1;
}

/* ------------------------------------------------------------------ */
/* Propagation (mirror of _propagate)                                 */
/* ------------------------------------------------------------------ */

int64_t kernel_propagate(CSolver *s) {
    while (s->prop_head < s->trail_len) {
        int32_t ilit = s->trail[s->prop_head++];
        int32_t false_lit = ilit ^ 1;
        int32_t node = s->w_head[ilit];
        int32_t prev = NIL;
        while (node != NIL) {
            int32_t next = s->node_next[node];
            int32_t ci = s->node_clause[node];
            int32_t orig = s->c_orig[ci];
            if (orig >= 0)
                s->prop_visits[orig] += 1;
            int32_t *lits = s->pool + s->c_start[ci];
            /* Ensure the false literal is in slot 1. */
            if (lits[0] == false_lit) {
                lits[0] = lits[1];
                lits[1] = false_lit;
            }
            int32_t first = lits[0];
            int fv = lit_value(s, first);
            if (fv == 1) {
                prev = node;
                node = next;
                continue;
            }
            /* Look for a new literal to watch. */
            int moved = 0;
            int32_t size = s->c_size[ci];
            for (int32_t k = 2; k < size; k++) {
                if (lit_value(s, lits[k]) != 0) {
                    int32_t tmp = lits[1];
                    lits[1] = lits[k];
                    lits[k] = tmp;
                    /* Unlink from this list, append to the new one
                     * (the new watch literal is never ~ilit, so the
                     * current scan is unaffected). */
                    if (prev == NIL)
                        s->w_head[ilit] = next;
                    else
                        s->node_next[prev] = next;
                    if (s->w_tail[ilit] == node)
                        s->w_tail[ilit] = prev;
                    watch_append(s, lits[1] ^ 1, node);
                    moved = 1;
                    break;
                }
            }
            if (moved) {
                node = next;
                continue;
            }
            prev = node;
            if (fv == 0) {
                /* Conflict: the rest of the list stays untouched. */
                s->prop_head = s->trail_len;
                return ci;
            }
            /* Unit: propagate first. */
            s->propagations += 1;
            assign(s, first, ci);
            node = next;
        }
    }
    return -1;
}

/* ------------------------------------------------------------------ */
/* Conflict analysis (mirror of _analyze + _learn + decay)            */
/* ------------------------------------------------------------------ */

static void bump_clause(CSolver *s, int64_t ci) {
    if (s->c_learned[ci]) {
        s->c_act[ci] += s->clause_bump;
        if (s->c_act[ci] > 1e20) {
            for (int64_t i = 0; i < s->n_learned; i++)
                s->c_act[s->learned_list[i]] *= 1e-20;
            s->clause_bump *= 1e-20;
        }
    } else if (s->c_orig[ci] >= 0) {
        s->conf_visits[s->c_orig[ci]] += 1;
        s->orig_act[s->c_orig[ci]] += s->orig_bump;
    }
}

/* First-UIP analysis.  Fills out_learned / out_backjump, leaving the
 * learned clause uninstalled — kernel_learn completes the conflict
 * handling (the Python wrapper logs the DRAT proof in between when
 * one is attached). */
void kernel_analyze(CSolver *s, int64_t conflict_ci) {
    int32_t *learned = s->out_learned;
    int64_t learned_len = 1; /* slot 0: asserting literal placeholder */
    uint8_t *seen = s->seen;
    int64_t counter = 0;
    int32_t ilit = -1;
    int64_t index = s->trail_len - 1;
    int64_t record = conflict_ci;
    int64_t path_len = 0;

    for (;;) {
        if (record != NO_REASON) {
            bump_clause(s, record);
            int32_t *lits = s->pool + s->c_start[record];
            int32_t size = s->c_size[record];
            for (int32_t j = 0; j < size; j++) {
                int32_t lit_k = lits[j];
                if (ilit >= 0 && lit_k == ilit)
                    continue;
                int32_t var_k = lit_k >> 1;
                if (seen[var_k] || s->levels[var_k] == 0)
                    continue;
                seen[var_k] = 1;
                s->path[path_len++] = var_k;
                heur_on_conflict_var(s, var_k);
                if (s->levels[var_k] >= s->n_levels)
                    counter += 1;
                else
                    learned[learned_len++] = lit_k;
            }
        }
        /* Walk the trail back to the next marked literal. */
        while (!seen[s->trail[index] >> 1])
            index -= 1;
        ilit = s->trail[index];
        int32_t var = ilit >> 1;
        seen[var] = 0;
        counter -= 1;
        index -= 1;
        if (counter <= 0)
            break;
        record = s->reasons[var];
    }

    learned[0] = ilit ^ 1;
    /* Cheap literal minimisation: drop literals whose reason's other
     * literals are all already present or at level 0. */
    uint8_t *mark = s->mark;
    for (int64_t i = 1; i < learned_len; i++)
        mark[learned[i] >> 1] = 1;
    int64_t kept = 1;
    for (int64_t i = 1; i < learned_len; i++) {
        int32_t lit_k = learned[i];
        int32_t reason = s->reasons[lit_k >> 1];
        if (reason == NO_REASON) {
            learned[kept++] = lit_k;
            continue;
        }
        int redundant = 1;
        int32_t *rlits = s->pool + s->c_start[reason];
        int32_t rsize = s->c_size[reason];
        for (int32_t j = 0; j < rsize; j++) {
            int32_t other_var = rlits[j] >> 1;
            if (!(mark[other_var] || s->levels[other_var] == 0 ||
                  other_var == (lit_k >> 1))) {
                redundant = 0;
                break;
            }
        }
        if (!redundant)
            learned[kept++] = lit_k;
    }
    learned_len = kept;

    /* Every marked/seen var was recorded in path, so one sweep
     * restores both scratch arrays to all-zero. */
    for (int64_t i = 0; i < path_len; i++) {
        mark[s->path[i]] = 0;
        seen[s->path[i]] = 0;
    }

    int64_t backjump;
    if (learned_len == 1) {
        backjump = 0;
    } else {
        /* Second-highest level among learned literals. */
        int64_t max_i = 1;
        for (int64_t k = 2; k < learned_len; k++) {
            if (s->levels[learned[k] >> 1] > s->levels[learned[max_i] >> 1])
                max_i = k;
        }
        int32_t tmp = learned[1];
        learned[1] = learned[max_i];
        learned[max_i] = tmp;
        backjump = s->levels[learned[1] >> 1];
    }
    s->out_learned_len = learned_len;
    s->out_backjump = backjump;
}

/* Install the analysis result: backtrack, store/attach the learned
 * clause (or assign the learned unit), then decay clause activity
 * and run the heuristic's after-conflict step.  Mirrors the conflict
 * branch of the reference solve loop; returns the new clause index
 * or -1 for a unit. */
int64_t kernel_learn(CSolver *s) {
    kernel_backtrack(s, s->out_backjump);
    s->learned_total += 1;
    int64_t ci = -1;
    if (s->out_learned_len == 1) {
        assign(s, s->out_learned[0], NO_REASON);
    } else {
        ci = s->n_clauses;
        int64_t start = s->pool_len;
        for (int64_t i = 0; i < s->out_learned_len; i++)
            s->pool[s->pool_len++] = s->out_learned[i];
        kernel_add_clause(s, start, s->out_learned_len, -1, 1);
        s->c_act[ci] = s->clause_bump;
        s->learned_list[s->n_learned++] = (int32_t)ci;
        assign(s, s->out_learned[0], (int32_t)ci);
    }
    s->clause_bump /= s->clause_decay;
    heur_after_conflict(s);
    return ci;
}

/* ------------------------------------------------------------------ */
/* Decision picking (heuristic arm of _pick_branch)                   */
/* ------------------------------------------------------------------ */

int64_t kernel_pick(CSolver *s) {
    while (s->heap_len > 0) {
        int32_t var = heap_pop(s);
        if (s->values[var] == UNASSIGNED)
            return 2 * (int64_t)var + (s->phases[var] ? 0 : 1);
    }
    return -2; /* all assigned: SAT */
}

/* ------------------------------------------------------------------ */
/* The budgeted search loop (no-hook fast path)                       */
/* ------------------------------------------------------------------ */

static int grow_needed(const CSolver *s) {
    return s->pool_len + s->n_vars + 1 > s->pool_cap ||
           s->n_clauses + 1 > s->clause_cap ||
           s->node_len + 2 > s->node_cap;
}

int64_t kernel_run(CSolver *s) {
    for (;;) {
        if (s->pending_conflict >= 0) {
            /* Re-entry after EV_GROW: finish the stashed conflict. */
            int64_t conflict = s->pending_conflict;
            s->pending_conflict = NO_REASON;
            kernel_analyze(s, conflict);
            kernel_learn(s);
            continue;
        }
        if (!s->resume_at_pick) {
            if ((s->max_conflicts >= 0 && s->conflicts >= s->max_conflicts) ||
                (s->max_iterations >= 0 && s->iterations >= s->max_iterations))
                return EV_BUDGET;
            s->iterations += 1;
            int64_t conflict = kernel_propagate(s);
            if (conflict >= 0) {
                s->conflicts += 1;
                s->conflicts_in_window += 1;
                if (s->n_levels == 0)
                    return EV_ROOT_CONFLICT;
                if (grow_needed(s)) {
                    s->pending_conflict = conflict;
                    return EV_GROW;
                }
                kernel_analyze(s, conflict);
                kernel_learn(s);
                continue;
            }
            if (s->restart_limit >= 0 &&
                s->conflicts_in_window >= s->restart_limit)
                return EV_RESTART_DUE;
            if ((double)s->n_learned >=
                s->max_learned + (double)s->trail_len) {
                s->resume_at_pick = 1;
                return EV_REDUCE_DUE;
            }
        } else {
            s->resume_at_pick = 0;
        }
        if (s->n_levels < s->n_assumptions) {
            s->resume_at_pick = 1;
            return EV_NEED_DECISION;
        }
        int64_t lit = kernel_pick(s);
        if (lit == -2)
            return EV_SAT;
        kernel_decide(s, lit);
    }
}
