"""Solver statistics and per-clause counters.

``SolverStats`` counts the quantities the paper reports (iterations,
conflicts, propagations, restarts) and ``ClauseCounters`` records how
often each *original* clause is visited during propagation and conflict
resolving — the raw data behind Figure 5 and the activity scores behind
the HyQSAT clause queue (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class SolverStats:
    """Aggregate search counters.

    One *iteration* is one pass of the decision / propagation /
    conflict-resolving loop, matching the paper's Table I metric.
    """

    iterations: int = 0
    decisions: int = 0
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0
    max_decision_level: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view, e.g. for table rendering."""
        return {
            "iterations": self.iterations,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "conflicts": self.conflicts,
            "restarts": self.restarts,
            "learned_clauses": self.learned_clauses,
            "deleted_clauses": self.deleted_clauses,
            "max_decision_level": self.max_decision_level,
        }


@dataclass
class ClauseCounters:
    """Visit and activity counters for the original clauses.

    Attributes
    ----------
    propagation_visits:
        ``propagation_visits[i]`` counts how often clause ``i`` was
        inspected while propagating (a watched literal of the clause
        became false).
    conflict_visits:
        How often clause ``i`` participated in conflict resolution
        (was the conflicting clause or a reason resolved during 1UIP
        analysis).
    activity:
        The HyQSAT activity score: initialised to 1 and bumped by a
        constant each time the clause is involved in a backtrack
        (Section IV-A of the paper).
    """

    propagation_visits: List[int] = field(default_factory=list)
    conflict_visits: List[int] = field(default_factory=list)
    activity: List[float] = field(default_factory=list)

    @classmethod
    def for_clauses(cls, num_clauses: int) -> "ClauseCounters":
        """Counters for ``num_clauses`` original clauses."""
        return cls(
            propagation_visits=[0] * num_clauses,
            conflict_visits=[0] * num_clauses,
            activity=[1.0] * num_clauses,
        )

    def total_visits(self, index: int) -> int:
        """Propagation + conflict visits of clause ``index``."""
        return self.propagation_visits[index] + self.conflict_visits[index]

    def top_by_activity(self, k: int) -> List[int]:
        """Indices of the ``k`` highest-activity clauses (ties by index)."""
        order = sorted(
            range(len(self.activity)), key=lambda i: (-self.activity[i], i)
        )
        return order[:k]
