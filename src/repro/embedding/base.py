"""Embedding data model and validity checking.

An *embedding* maps each problem-graph vertex (a formula or auxiliary
variable) to a *qubit chain*: a connected set of physical qubits acting
as one logical variable (Section II-D).  A valid embedding must have

1. pairwise-disjoint chains,
2. each chain connected in the hardware graph,
3. for every problem edge, at least one hardware coupler between the
   two chains.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.topology.chimera import ChimeraGraph

Edge = Tuple[int, int]


class EmbeddingTimeout(TimeoutError):
    """An embedder ran out of its wall-clock budget.

    Distinct from an embedding *failure* (which means the budget was
    spent and no valid embedding exists at the attempted density): a
    timeout says nothing about embeddability, so callers may retry
    with a larger budget, shrink the problem, or — as the HyQSAT
    frontend does — skip this clause queue and let CDCL carry on.

    Carries the progress made: ``passes`` completed improvement/route
    passes and ``elapsed_seconds`` of wall time spent.
    """

    def __init__(self, message: str, passes: int, elapsed_seconds: float):
        super().__init__(message)
        self.passes = passes
        self.elapsed_seconds = elapsed_seconds


def _norm_edge(u: int, v: int) -> Edge:
    return (u, v) if u < v else (v, u)


class Embedding:
    """A mapping from problem variables to qubit chains."""

    __slots__ = ("_chains",)

    def __init__(self, chains: Optional[Mapping[int, Iterable[int]]] = None):
        self._chains: Dict[int, Tuple[int, ...]] = {}
        if chains:
            for var, qubits in chains.items():
                self.set_chain(var, qubits)

    def set_chain(self, var: int, qubits: Iterable[int]) -> None:
        """Assign the chain of ``var`` (overwrites)."""
        chain = tuple(sorted(set(qubits)))
        if not chain:
            raise ValueError(f"chain of variable {var} must be non-empty")
        self._chains[var] = chain

    def chain_of(self, var: int) -> Tuple[int, ...]:
        """The chain of ``var`` (KeyError if unembedded)."""
        return self._chains[var]

    def __contains__(self, var: object) -> bool:
        return var in self._chains

    def __len__(self) -> int:
        return len(self._chains)

    def __iter__(self):
        return iter(self._chains)

    @property
    def variables(self) -> List[int]:
        """Embedded variables (sorted)."""
        return sorted(self._chains)

    @property
    def chains(self) -> Dict[int, Tuple[int, ...]]:
        """Shallow copy of the chain mapping."""
        return dict(self._chains)

    def all_qubits(self) -> Set[int]:
        """Union of every chain."""
        out: Set[int] = set()
        for chain in self._chains.values():
            out.update(chain)
        return out

    def num_qubits_used(self) -> int:
        """Total physical qubits consumed."""
        return sum(len(c) for c in self._chains.values())

    def qubit_owner(self) -> Dict[int, int]:
        """Inverse map qubit -> variable (assumes disjoint chains)."""
        out: Dict[int, int] = {}
        for var, chain in self._chains.items():
            for qubit in chain:
                out[qubit] = var
        return out

    def restricted_to(self, variables: Iterable[int]) -> "Embedding":
        """Sub-embedding for a variable subset."""
        keep = set(variables)
        return Embedding(
            {var: chain for var, chain in self._chains.items() if var in keep}
        )

    def __repr__(self) -> str:
        return f"Embedding(vars={len(self._chains)}, qubits={self.num_qubits_used()})"


@dataclass(frozen=True)
class EmbeddingResult:
    """Outcome of an embedding attempt.

    ``success`` means every requested problem edge was realised.
    ``elapsed_seconds`` is the wall-clock embedding time — the Figure 13
    (a) metric.
    """

    embedding: Embedding
    success: bool
    elapsed_seconds: float
    edge_couplers: Dict[Edge, Tuple[Tuple[int, int], ...]] = field(default_factory=dict)

    @property
    def max_chain_length(self) -> int:
        """Longest chain (0 for an empty embedding)."""
        return max((len(c) for c in self.embedding.chains.values()), default=0)

    @property
    def avg_chain_length(self) -> float:
        """Mean chain length (0.0 for an empty embedding)."""
        chains = self.embedding.chains
        if not chains:
            return 0.0
        return sum(len(c) for c in chains.values()) / len(chains)


def chain_length_stats(embedding: Embedding) -> Dict[str, float]:
    """Mean / max / median chain length of an embedding."""
    lengths = [len(c) for c in embedding.chains.values()]
    if not lengths:
        return {"mean": 0.0, "max": 0.0, "median": 0.0}
    return {
        "mean": sum(lengths) / len(lengths),
        "max": float(max(lengths)),
        "median": float(statistics.median(lengths)),
    }


def find_edge_couplers(
    embedding: Embedding, hardware: ChimeraGraph, edges: Iterable[Edge]
) -> Dict[Edge, Tuple[Tuple[int, int], ...]]:
    """For each problem edge, the hardware couplers joining its chains.

    An edge with an empty coupler tuple is *unrealised*.
    """
    out: Dict[Edge, Tuple[Tuple[int, int], ...]] = {}
    for u, v in edges:
        key = _norm_edge(u, v)
        if u not in embedding or v not in embedding:
            out[key] = ()
            continue
        chain_u = embedding.chain_of(u)
        chain_v = set(embedding.chain_of(v))
        couplers: List[Tuple[int, int]] = []
        for qu in chain_u:
            for qv in hardware.neighbors(qu):
                if qv in chain_v:
                    couplers.append((qu, qv))
        out[key] = tuple(couplers)
    return out


def verify_embedding(
    embedding: Embedding,
    hardware: ChimeraGraph,
    edges: Sequence[Edge] = (),
) -> List[str]:
    """Validity check; returns a list of human-readable problems
    (empty list == valid)."""
    problems: List[str] = []

    # 1. Chains use working qubits and are pairwise disjoint.
    owner: Dict[int, int] = {}
    for var, chain in embedding.chains.items():
        for qubit in chain:
            if not hardware.is_working(qubit):
                problems.append(f"chain of {var} uses non-working qubit {qubit}")
            if qubit in owner:
                problems.append(
                    f"qubit {qubit} shared by variables {owner[qubit]} and {var}"
                )
            else:
                owner[qubit] = var

    # 2. Each chain induces a connected subgraph.
    for var, chain in embedding.chains.items():
        if len(chain) == 1:
            continue
        members = set(chain)
        seen = {chain[0]}
        frontier = [chain[0]]
        while frontier:
            qubit = frontier.pop()
            for other in hardware.neighbors(qubit):
                if other in members and other not in seen:
                    seen.add(other)
                    frontier.append(other)
        if seen != members:
            problems.append(
                f"chain of {var} is disconnected: {sorted(members - seen)} unreachable"
            )

    # 3. Every problem edge has a realising coupler.
    couplers = find_edge_couplers(embedding, hardware, edges)
    for edge, realising in couplers.items():
        if not realising:
            problems.append(f"problem edge {edge} has no hardware coupler")

    return problems
