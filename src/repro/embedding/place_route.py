"""A place-and-route embedder (the Bian et al. [8] baseline).

The P&R scheme treats embedding like circuit mapping:

1. *Placement* — problem vertices are assigned seed qubits cell by
   cell in BFS order over the problem graph, so connected vertices land
   in nearby cells.
2. *Routing* — chains grow from their fixed seeds to reach every
   neighbour chain, using negotiated-congestion (PathFinder-style)
   shortest-path routing: qubits may be shared temporarily, the cost of
   an overused qubit rises exponentially, and rip-up/re-route passes
   repeat until chains are disjoint or the budget runs out.

The fixed placement is what distinguishes P&R from the Minorminer-like
scheme (which also re-chooses chain roots): it makes each pass cheaper
but caps the achievable density, which is why P&R hits its capacity
wall first in Figure 13 (b) while spending the most time per attempt
(its "time-consuming heuristic for allocating variables").
"""

from __future__ import annotations

import heapq
import time
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.embedding.base import (
    Edge,
    Embedding,
    EmbeddingResult,
    EmbeddingTimeout,
    find_edge_couplers,
)
from repro.topology.chimera import ChimeraGraph, QubitCoord

_INF = float("inf")


class PlaceAndRouteEmbedder:
    """BFS placement + negotiated-congestion routing."""

    def __init__(
        self,
        hardware: ChimeraGraph,
        max_rounds: int = 3,
        max_route_passes: int = 12,
        per_cell: int = 2,
        cell_stride: int = 2,
        overuse_cost_base: float = 8.0,
        timeout_seconds: float = 300.0,
        seed: int = 0,
    ):
        self.hardware = hardware
        self.max_rounds = max_rounds
        self.max_route_passes = max_route_passes
        self.per_cell = per_cell
        self.cell_stride = max(1, cell_stride)
        self.overuse_cost_base = overuse_cost_base
        self.timeout_seconds = timeout_seconds
        self.seed = seed
        self._adjacency: List[List[int]] = [
            hardware.neighbors(q) for q in range(hardware.num_qubits)
        ]

    def embed(
        self, edges: Sequence[Edge], variables: Optional[Iterable[int]] = None
    ) -> EmbeddingResult:
        """Embed the problem graph given by ``edges`` (all-or-nothing).

        Raises :class:`~repro.embedding.base.EmbeddingTimeout` when the
        wall-clock budget runs out; a failure result means the round
        budget was exhausted without finding a disjoint routing.
        """
        start = time.perf_counter()

        adjacency: Dict[int, Set[int]] = {}
        for u, v in edges:
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
        if variables is not None:
            for var in variables:
                adjacency.setdefault(var, set())
        if not adjacency:
            return EmbeddingResult(Embedding(), True, time.perf_counter() - start)

        for round_num in range(self.max_rounds):
            if time.perf_counter() - start > self.timeout_seconds:
                raise EmbeddingTimeout(
                    f"place-and-route embedder exceeded its "
                    f"{self.timeout_seconds:.3g}s budget after "
                    f"{round_num} completed round(s)",
                    passes=round_num,
                    elapsed_seconds=time.perf_counter() - start,
                )
            placement = self._place(adjacency, shuffle_seed=round_num)
            if len(placement) < len(adjacency):
                continue  # ran out of cells
            chains = self._route(placement, adjacency, start, round_num)
            if chains is None:
                continue
            embedding = Embedding(
                {var: tuple(chain) for var, chain in chains.items()}
            )
            couplers = find_edge_couplers(embedding, self.hardware, list(edges))
            if all(couplers[e] for e in couplers):
                return EmbeddingResult(
                    embedding, True, time.perf_counter() - start, couplers
                )
        return EmbeddingResult(Embedding(), False, time.perf_counter() - start)

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def _place(
        self, adjacency: Dict[int, Set[int]], shuffle_seed: int
    ) -> Dict[int, int]:
        """Seed qubits cell by cell in problem-graph BFS order."""
        hardware = self.hardware
        rng = np.random.default_rng(self.seed + shuffle_seed)
        order: List[int] = []
        seen: Set[int] = set()
        roots = sorted(adjacency, key=lambda v: -len(adjacency[v]))
        if shuffle_seed:
            roots = list(rng.permutation(np.array(roots, dtype=np.int64)))
        for root in roots:
            root = int(root)
            if root in seen:
                continue
            queue = deque([root])
            seen.add(root)
            while queue:
                vertex = queue.popleft()
                order.append(vertex)
                for other in sorted(adjacency[vertex]):
                    if other not in seen:
                        seen.add(other)
                        queue.append(other)

        placement: Dict[int, int] = {}
        # Strided cell walk: spreading seeds leaves routing headroom in
        # the skipped cells (congestion is P&R's binding constraint).
        stride = self.cell_stride
        cell_walk = [
            (row, col)
            for row in range(0, hardware.rows, stride)
            for col in range(0, hardware.cols, stride)
        ]
        if len(cell_walk) * min(self.per_cell, hardware.shore) < len(order):
            cell_walk = [
                (row, col)
                for row in range(hardware.rows)
                for col in range(hardware.cols)
            ]
        slot = 0
        per_cell = min(self.per_cell, hardware.shore)
        for vertex in order:
            cell_index, unit = divmod(slot, per_cell)
            if cell_index >= len(cell_walk):
                break  # out of cells; caller retries or fails
            row, col = cell_walk[cell_index]
            placement[vertex] = hardware.qubit_id(QubitCoord(row, col, 0, unit))
            slot += 1
        return placement

    # ------------------------------------------------------------------
    # Negotiated-congestion routing
    # ------------------------------------------------------------------

    def _route(
        self,
        placement: Dict[int, int],
        adjacency: Dict[int, Set[int]],
        start_time: float,
        round_num: int = 0,
    ) -> Optional[Dict[int, Set[int]]]:
        """Grow chains from fixed seeds until disjoint or give up."""
        usage = [0] * self.hardware.num_qubits
        chains: Dict[int, Set[int]] = {}
        for vertex, seed_qubit in placement.items():
            chains[vertex] = {seed_qubit}
            usage[seed_qubit] += 1

        order = sorted(adjacency, key=lambda v: -len(adjacency[v]))
        rng = np.random.default_rng(self.seed)
        for pass_num in range(self.max_route_passes):
            vertex_order = (
                order
                if pass_num == 0
                else [int(v) for v in rng.permutation(np.array(order, dtype=np.int64))]
            )
            for vertex in vertex_order:
                if time.perf_counter() - start_time > self.timeout_seconds:
                    raise EmbeddingTimeout(
                        f"place-and-route routing exceeded its "
                        f"{self.timeout_seconds:.3g}s budget in round "
                        f"{round_num} after {pass_num} completed route "
                        f"pass(es)",
                        passes=pass_num,
                        elapsed_seconds=time.perf_counter() - start_time,
                    )
                seed_qubit = placement[vertex]
                for qubit in chains[vertex]:
                    usage[qubit] -= 1
                chain = self._route_vertex(
                    vertex, seed_qubit, adjacency[vertex], chains, usage
                )
                if chain is None:
                    chain = {seed_qubit}
                chains[vertex] = chain
                for qubit in chain:
                    usage[qubit] += 1
            if max(usage, default=0) <= 1:
                return chains
        return None

    def _qubit_cost(self, qubit: int, usage: List[int]) -> float:
        if not self.hardware.is_working(qubit):
            return _INF
        return self.overuse_cost_base ** usage[qubit]

    def _route_vertex(
        self,
        vertex: int,
        seed_qubit: int,
        neighbor_vars: Set[int],
        chains: Dict[int, Set[int]],
        usage: List[int],
    ) -> Optional[Set[int]]:
        """Chain from the fixed seed reaching every neighbour chain."""
        chain: Set[int] = {seed_qubit}
        for neighbor in sorted(neighbor_vars):
            target = chains.get(neighbor)
            if not target:
                continue
            if any(
                other in target
                for qubit in chain
                for other in self._adjacency[qubit]
            ):
                continue  # already adjacent
            path = self._dijkstra_path(chain, target, usage)
            if path is None:
                return None
            chain.update(path)
        return chain

    def _dijkstra_path(
        self, sources: Set[int], targets: Set[int], usage: List[int]
    ) -> Optional[List[int]]:
        """Cheapest path from the chain to adjacency with the target
        chain; returns interior qubits to absorb into the chain."""
        num = self.hardware.num_qubits
        dist = [_INF] * num
        parent = [-1] * num
        heap: List[Tuple[float, int]] = []
        for qubit in sources:
            dist[qubit] = 0.0
            heapq.heappush(heap, (0.0, qubit))
        best_end: Optional[int] = None
        best_cost = _INF
        while heap:
            cost, qubit = heapq.heappop(heap)
            if cost > dist[qubit] or cost >= best_cost:
                continue
            for other in self._adjacency[qubit]:
                if other in targets:
                    if cost < best_cost:
                        best_cost, best_end = cost, qubit
                    continue
                step = cost + self._qubit_cost(other, usage)
                if step < dist[other]:
                    dist[other] = step
                    parent[other] = qubit
                    heapq.heappush(heap, (step, other))
        if best_end is None:
            return None
        path: List[int] = []
        cursor = best_end
        while cursor != -1 and cursor not in sources:
            path.append(cursor)
            cursor = parent[cursor]
        return path
