"""A Minorminer-style iterative heuristic embedder (baseline [11]).

Reimplements the Cai–Macready–Roy "practical heuristic for finding
graph minors" that D-Wave's Minorminer library is built on:

1. Problem vertices are placed one at a time.  For each vertex, a BFS
   (Dijkstra over qubit costs) from every embedded neighbour's chain
   computes distance fields; the qubit minimising the summed distances
   becomes the vertex's root, and the chain is the union of the
   shortest paths back to each neighbour chain.
2. Qubits may be temporarily shared by several chains; the cost of a
   qubit grows exponentially with its current overuse, which pushes
   later routing passes away from contested regions.
3. Improvement passes rip out and re-route each vertex until no qubit
   is shared (success) or the pass/time budget is exhausted (failure).

This faithful shape — per-vertex shortest-path routing inside an
iterative adjustment loop — is what gives the baseline its
``O(N_q · N_p² · log N_p)`` behaviour and seconds-scale embedding times
in Figure 13, versus HyQSAT's linear scheme.
"""

from __future__ import annotations

import heapq
import time
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.embedding.base import (
    Edge,
    Embedding,
    EmbeddingResult,
    EmbeddingTimeout,
    find_edge_couplers,
)
from repro.topology.chimera import ChimeraGraph

_INF = float("inf")


class MinorminerLikeEmbedder:
    """Iterative shortest-path embedder for arbitrary problem graphs.

    Parameters
    ----------
    hardware:
        Target Chimera lattice.
    max_passes:
        Improvement passes over all vertices before giving up.
    timeout_seconds:
        Wall-clock budget (Figure 13 uses 300 s; tests use far less).
    overuse_cost_base:
        Base of the exponential qubit-sharing penalty.
    seed:
        RNG seed for the random vertex orders.
    """

    def __init__(
        self,
        hardware: ChimeraGraph,
        max_passes: int = 10,
        timeout_seconds: float = 300.0,
        overuse_cost_base: float = 8.0,
        seed: int = 0,
    ):
        self.hardware = hardware
        self.max_passes = max_passes
        self.timeout_seconds = timeout_seconds
        self.overuse_cost_base = overuse_cost_base
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._adjacency: List[List[int]] = [
            hardware.neighbors(q) for q in range(hardware.num_qubits)
        ]

    def embed(
        self, edges: Sequence[Edge], variables: Optional[Iterable[int]] = None
    ) -> EmbeddingResult:
        """Embed the problem graph given by ``edges`` (all-or-nothing).

        Raises :class:`~repro.embedding.base.EmbeddingTimeout` when the
        wall-clock budget runs out mid-search; returns a failure
        result only when the pass budget is exhausted (the problem is
        too dense for this heuristic).
        """
        start = time.perf_counter()
        rng = self._rng = np.random.default_rng(self.seed)

        neighbors: Dict[int, Set[int]] = {}
        for u, v in edges:
            neighbors.setdefault(u, set()).add(v)
            neighbors.setdefault(v, set()).add(u)
        if variables is not None:
            for var in variables:
                neighbors.setdefault(var, set())
        order = sorted(neighbors, key=lambda v: -len(neighbors[v]))
        if not order:
            return EmbeddingResult(Embedding(), True, time.perf_counter() - start)

        chains: Dict[int, Set[int]] = {}
        usage = [0] * self.hardware.num_qubits

        def out_of_time() -> bool:
            return time.perf_counter() - start > self.timeout_seconds

        # Initial placement, then improvement passes.
        for pass_num in range(self.max_passes + 1):
            vertex_order = (
                order
                if pass_num == 0
                else list(rng.permutation(np.array(order, dtype=np.int64)))
            )
            for vertex in vertex_order:
                vertex = int(vertex)
                self._rip_out(vertex, chains, usage)
                chain = self._route_vertex(vertex, neighbors[vertex], chains, usage)
                if chain is None:
                    return EmbeddingResult(
                        Embedding(), False, time.perf_counter() - start
                    )
                chains[vertex] = chain
                for qubit in chain:
                    usage[qubit] += 1
                if out_of_time():
                    elapsed = time.perf_counter() - start
                    raise EmbeddingTimeout(
                        f"minorminer-like embedder exceeded its "
                        f"{self.timeout_seconds:.3g}s budget after "
                        f"{pass_num} completed pass(es)",
                        passes=pass_num,
                        elapsed_seconds=elapsed,
                    )
            if max(usage) <= 1:
                break
        if max(usage, default=0) > 1:
            return EmbeddingResult(Embedding(), False, time.perf_counter() - start)

        embedding = Embedding({var: tuple(chain) for var, chain in chains.items()})
        elapsed = time.perf_counter() - start
        couplers = find_edge_couplers(embedding, self.hardware, edges)
        success = all(couplers[e] for e in couplers)
        return EmbeddingResult(embedding, success, elapsed, couplers)

    # ------------------------------------------------------------------

    def _rip_out(
        self, vertex: int, chains: Dict[int, Set[int]], usage: List[int]
    ) -> None:
        old = chains.pop(vertex, None)
        if old:
            for qubit in old:
                usage[qubit] -= 1

    def _qubit_cost(self, qubit: int, usage: List[int]) -> float:
        if not self.hardware.is_working(qubit):
            return _INF
        return self.overuse_cost_base ** usage[qubit]

    def _distance_field(
        self, sources: Set[int], usage: List[int]
    ) -> Tuple[List[float], List[int]]:
        """Dijkstra from a chain: cost to extend a path to each qubit.

        A source qubit is free to start from only if the owning chain
        is its sole user; a source shared with other chains costs its
        overuse penalty, otherwise overused qubits become zero-cost
        attractors and the improvement passes collapse onto them
        instead of pulling chains apart.
        """
        num = self.hardware.num_qubits
        dist = [_INF] * num
        parent = [-1] * num
        heap: List[Tuple[float, int]] = []
        for qubit in sources:
            extra_users = max(0, usage[qubit] - 1)
            cost = self.overuse_cost_base ** extra_users - 1.0
            if cost < dist[qubit]:
                dist[qubit] = cost
                heapq.heappush(heap, (cost, qubit))
        while heap:
            d, qubit = heapq.heappop(heap)
            if d > dist[qubit]:
                continue
            for other in self._adjacency[qubit]:
                cost = d + self._qubit_cost(other, usage)
                if cost < dist[other]:
                    dist[other] = cost
                    parent[other] = qubit
                    heapq.heappush(heap, (cost, other))
        return dist, parent

    def _route_vertex(
        self,
        vertex: int,
        neighbor_vars: Set[int],
        chains: Dict[int, Set[int]],
        usage: List[int],
    ) -> Optional[Set[int]]:
        """Chain for ``vertex`` reaching every embedded neighbour chain."""
        embedded_neighbors = [n for n in neighbor_vars if n in chains]
        num = self.hardware.num_qubits
        if not embedded_neighbors:
            # Free placement: a random least-used working qubit, so
            # disconnected components scatter instead of piling up.
            candidates = [q for q in range(num) if self.hardware.is_working(q)]
            if not candidates:
                return None
            least = min(usage[q] for q in candidates)
            pool = [q for q in candidates if usage[q] == least]
            return {int(self._rng.choice(pool))}

        fields = [
            self._distance_field(chains[n], usage) for n in embedded_neighbors
        ]
        # Root = qubit minimising own cost + sum of distances to it.
        best_root, best_total = None, _INF
        for qubit in range(num):
            own = self._qubit_cost(qubit, usage)
            if own == _INF:
                continue
            total = own
            for dist, _ in fields:
                if dist[qubit] == _INF:
                    total = _INF
                    break
                total += dist[qubit]
            if total < best_total:
                best_total, best_root = total, qubit
        if best_root is None:
            return None
        chain: Set[int] = {best_root}
        for (dist, parent), neighbor in zip(fields, embedded_neighbors):
            # Walk back towards the neighbour chain; stop on reaching it.
            cursor = best_root
            neighbor_chain = chains[neighbor]
            while cursor not in neighbor_chain and parent[cursor] != -1:
                chain.add(cursor)
                cursor = parent[cursor]
            # Path ends adjacent to (or inside) the neighbour chain.
        return chain
