"""The Connection Requirement List (Section IV-B).

While clauses pop off the queue, the embedder records which qubit
chains must end up coupled: a requirement ``x_i : {x_j, ..., x_k}``
says the chain of *owner* ``x_i`` must connect to the chains of each
*target*.  Requirements accumulate per owner (the paper's example grows
``x_1 : {x_2}`` into ``x_1 : {x_2, x_5}`` as the second clause pops),
and each (owner, target) pair remembers which clauses need it so a
failed allocation can be attributed to the right clauses.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple


class ConnectionRequirementList:
    """Ordered owner -> targets requirements with clause attribution."""

    def __init__(self) -> None:
        self._targets: Dict[int, List[int]] = {}
        self._order: List[int] = []
        self._clauses_of: Dict[Tuple[int, int], Set[int]] = {}

    def add(self, owner: int, target: int, clause_index: int) -> None:
        """Require owner's chain to couple to target's chain for a clause."""
        if owner == target:
            raise ValueError(f"self-connection requirement for variable {owner}")
        if owner not in self._targets:
            self._targets[owner] = []
            self._order.append(owner)
        if target not in self._targets[owner]:
            self._targets[owner].append(target)
        self._clauses_of.setdefault((owner, target), set()).add(clause_index)

    def owners(self) -> List[int]:
        """Owners in first-appearance order."""
        return list(self._order)

    def targets_of(self, owner: int) -> List[int]:
        """Targets of ``owner`` in insertion order (empty if none)."""
        return list(self._targets.get(owner, []))

    def clauses_needing(self, owner: int, target: int) -> Set[int]:
        """Clause indices that require the (owner, target) connection."""
        return set(self._clauses_of.get((owner, target), set()))

    def pairs(self) -> Iterator[Tuple[int, int]]:
        """All (owner, target) pairs in order."""
        for owner in self._order:
            for target in self._targets[owner]:
                yield owner, target

    def __len__(self) -> int:
        return sum(len(t) for t in self._targets.values())

    def __contains__(self, owner: object) -> bool:
        return owner in self._targets

    def __repr__(self) -> str:
        inner = "; ".join(
            f"{owner}:{{{', '.join(map(str, self._targets[owner]))}}}"
            for owner in self._order
        )
        return f"CRL({inner})"
