"""Minor embedding of problem graphs onto Chimera hardware.

Three embedders reproduce the Figure 13 comparison:

- :class:`~repro.embedding.hyqsat_embed.HyQSatEmbedder` — the paper's
  linear-time two-step scheme (Section IV-B): variables to vertical
  lines in clause-queue order, then greedy horizontal-line allocation
  driven by a connection requirement list (CRL).
- :class:`~repro.embedding.minorminer_like.MinorminerLikeEmbedder` — a
  from-scratch Cai–Macready–Roy-style iterative shortest-path router
  (the D-Wave Minorminer baseline [11]).
- :class:`~repro.embedding.place_route.PlaceAndRouteEmbedder` — the
  place-and-route baseline of Bian et al. [8].
"""

from repro.embedding.base import (
    Embedding,
    EmbeddingResult,
    EmbeddingTimeout,
    chain_length_stats,
    find_edge_couplers,
    verify_embedding,
)
from repro.embedding.crl import ConnectionRequirementList
from repro.embedding.hyqsat_embed import HyQSatEmbedder, HyQSatEmbeddingResult
from repro.embedding.minorminer_like import MinorminerLikeEmbedder
from repro.embedding.place_route import PlaceAndRouteEmbedder

__all__ = [
    "ConnectionRequirementList",
    "Embedding",
    "EmbeddingResult",
    "EmbeddingTimeout",
    "HyQSatEmbedder",
    "HyQSatEmbeddingResult",
    "MinorminerLikeEmbedder",
    "PlaceAndRouteEmbedder",
    "chain_length_stats",
    "find_edge_couplers",
    "verify_embedding",
]
