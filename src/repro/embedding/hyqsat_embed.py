"""HyQSAT's linear-time two-step embedding scheme (Section IV-B).

Step 1 pops clauses from the clause queue in order and allocates each
new formula variable to the next free *vertical line*, while recording
the required chain connections in a
:class:`~repro.embedding.crl.ConnectionRequirementList` (CRL).  The
connection requirements come from the Eq. 4 problem graph of each
clause: a 3-literal clause ``l1 ∨ l2 ∨ l3`` with auxiliary ``a``
contributes the edges ``(v1, v2)`` (the ``H1·H2`` term) and
``(a, v1), (a, v2), (a, v3)``.

Step 2 satisfies the CRL by allocating *horizontal-line* segments,
bottom line first, left to right, greedily packing segments
out-of-order so each line is maximally utilised.  A vertical variable's
segment must also cross its own vertical line (keeping the chain
connected); auxiliary variables live purely on horizontal lines
(they connect at most three chains, so one segment suffices).

Both steps touch each qubit O(1) times: overall O(N_q) — the paper's
complexity claim — versus the iterative routing of Minorminer
(O(N_q · N_p² · log N_p)).

Clauses whose variables no longer fit on vertical lines, or whose
connection requirements cannot be allocated, are simply *not embedded*
(the hybrid solver keeps them on the CDCL side); everything that did
fit is returned with a valid embedding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.embedding.base import Edge, Embedding, EmbeddingResult, _norm_edge
from repro.embedding.crl import ConnectionRequirementList
from repro.qubo.encoding import FormulaEncoding
from repro.topology.chimera import ChimeraGraph, HorizontalLine, VerticalLine


@dataclass(frozen=True)
class HyQSatEmbeddingResult(EmbeddingResult):
    """Embedding result with per-clause accounting.

    ``embedded_clauses`` are indices (into the encoding's clause list)
    of clauses whose every problem edge was realised; ``success`` is
    true when that is *all* clauses.
    """

    embedded_clauses: Tuple[int, ...] = ()
    unembedded_clauses: Tuple[int, ...] = ()

    @property
    def num_embedded(self) -> int:
        """Count of fully-embedded clauses."""
        return len(self.embedded_clauses)


def clause_edges(encoding: FormulaEncoding, clause_index: int) -> List[Edge]:
    """Problem-graph edges contributed by one encoded clause."""
    clause = encoding.clauses[clause_index]
    aux = encoding.aux_of_clause[clause_index]
    variables = [lit.var for lit in clause.lits]
    if len(variables) == 1:
        return []
    if len(variables) == 2:
        return [_norm_edge(variables[0], variables[1])]
    assert aux is not None, "3-literal clauses carry an auxiliary variable"
    v1, v2, v3 = variables
    return [
        _norm_edge(v1, v2),
        _norm_edge(aux, v1),
        _norm_edge(aux, v2),
        _norm_edge(aux, v3),
    ]


@dataclass
class _Segment:
    """A horizontal-line segment allocated to one owner chain."""

    owner: int
    line: HorizontalLine
    col_start: int
    col_end: int

    def qubits(self, hardware: ChimeraGraph) -> List[int]:
        line_qubits = hardware.horizontal_line_qubits(self.line)
        return line_qubits[self.col_start : self.col_end + 1]


class HyQSatEmbedder:
    """The Section IV-B embedder for a Chimera lattice."""

    def __init__(self, hardware: ChimeraGraph):
        self.hardware = hardware

    def embed(self, encoding: FormulaEncoding) -> HyQSatEmbeddingResult:
        """Embed as many queue clauses as fit, in queue order."""
        start = time.perf_counter()
        hardware = self.hardware

        # ---------------- Step 1: vertical-line allocation ----------------
        lines = hardware.vertical_lines()
        line_of_var: Dict[int, VerticalLine] = {}
        next_line = 0
        crl = ConnectionRequirementList()
        candidates: List[int] = []

        for k in range(len(encoding.clauses)):
            clause = encoding.clauses[k]
            new_vars = [
                lit.var for lit in clause.lits if lit.var not in line_of_var
            ]
            if next_line + len(new_vars) > len(lines):
                break  # vertical capacity reached; queue order stops here
            for var in new_vars:
                line_of_var[var] = lines[next_line]
                next_line += 1
            for owner, target in self._requirements(encoding, k):
                crl.add(owner, target, k)
            candidates.append(k)

        # ---------------- Step 2: horizontal-line allocation --------------
        free: Dict[HorizontalLine, List[bool]] = {}
        segments: List[_Segment] = []
        coupling_rows: Dict[int, Set[int]] = {var: set() for var in line_of_var}
        realized: Dict[Edge, List[Tuple[int, int]]] = {}

        pending: List[Tuple[int, List[int]]] = [
            (owner, crl.targets_of(owner)) for owner in crl.owners()
        ]
        hlines = hardware.horizontal_lines_bottom_up()
        line_cursor = 0

        while pending and line_cursor < len(hlines):
            line = hlines[line_cursor]
            if line not in free:
                free[line] = [True] * hardware.cols
            cells = free[line]
            still_pending: List[Tuple[int, List[int]]] = []
            for owner, targets in pending:
                span = self._span_columns(owner, targets, line_of_var)
                if span is None:
                    still_pending.append((owner, targets))
                    continue
                c1, c2 = span
                if all(cells[c] for c in range(c1, c2 + 1)):
                    segment = _Segment(owner, line, c1, c2)
                    segments.append(segment)
                    for c in range(c1, c2 + 1):
                        cells[c] = False
                    self._record_couplings(
                        owner, targets, segment, line_of_var, coupling_rows, realized
                    )
                else:
                    still_pending.append((owner, targets))
            pending = still_pending
            # Free cells only shrink, so a requirement that failed on
            # this line cannot fit later: always move to the next line.
            line_cursor += 1

        # Split pass: merged requirements that never fit are retried as
        # one segment per target, which has a smaller column span.
        if pending:
            pending = self._split_pass(
                pending, free, hlines, segments, line_of_var, coupling_rows, realized
            )

        # ---------------- Chain construction ------------------------------
        embedding = self._build_chains(line_of_var, segments, coupling_rows)

        embedded, unembedded = self._classify_clauses(
            encoding, candidates, line_of_var, embedding, realized
        )
        # Drop auxiliary chains of unembedded clauses.
        dropped_aux = {
            encoding.aux_of_clause[k]
            for k in unembedded
            if encoding.aux_of_clause[k] is not None
        }
        if dropped_aux:
            embedding = embedding.restricted_to(
                v for v in embedding.variables if v not in dropped_aux
            )

        elapsed = time.perf_counter() - start
        edge_couplers = {
            edge: tuple(couplers) for edge, couplers in realized.items()
        }
        return HyQSatEmbeddingResult(
            embedding=embedding,
            success=len(embedded) == len(encoding.clauses),
            elapsed_seconds=elapsed,
            edge_couplers=edge_couplers,
            embedded_clauses=tuple(embedded),
            unembedded_clauses=tuple(unembedded),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _requirements(
        self, encoding: FormulaEncoding, clause_index: int
    ) -> List[Tuple[int, int]]:
        """CRL entries (owner, target) for one clause.

        The first literal's variable owns the variable-variable edge;
        the auxiliary owns its three connections (it has no vertical
        line, so it must be the one extending onto horizontal qubits).
        """
        clause = encoding.clauses[clause_index]
        aux = encoding.aux_of_clause[clause_index]
        variables = [lit.var for lit in clause.lits]
        if len(variables) == 1:
            return []
        if len(variables) == 2:
            return [(variables[0], variables[1])]
        assert aux is not None
        v1, v2, v3 = variables
        return [(v1, v2), (aux, v1), (aux, v2), (aux, v3)]

    def _span_columns(
        self,
        owner: int,
        targets: Sequence[int],
        line_of_var: Dict[int, VerticalLine],
    ) -> Optional[Tuple[int, int]]:
        """Cell-column span a segment must cover, or None if a target
        (or a vertical owner) has no vertical line."""
        cols: List[int] = []
        if owner in line_of_var:
            cols.append(line_of_var[owner].col)
        elif owner <= 0:
            return None
        for target in targets:
            line = line_of_var.get(target)
            if line is None:
                return None
            cols.append(line.col)
        if not cols:
            return None
        return min(cols), max(cols)

    def _record_couplings(
        self,
        owner: int,
        targets: Sequence[int],
        segment: _Segment,
        line_of_var: Dict[int, VerticalLine],
        coupling_rows: Dict[int, Set[int]],
        realized: Dict[Edge, List[Tuple[int, int]]],
    ) -> None:
        """Mark the problem edges realised by a freshly allocated segment."""
        hardware = self.hardware
        row = segment.line.row
        for target in targets:
            vline = line_of_var[target]
            vq, hq = hardware.crossing_qubits(vline, segment.line)
            realized.setdefault(_norm_edge(owner, target), []).append((hq, vq))
            coupling_rows[target].add(row)
        if owner in line_of_var:
            coupling_rows[owner].add(row)

    def _split_pass(
        self,
        pending: List[Tuple[int, List[int]]],
        free: Dict[HorizontalLine, List[bool]],
        hlines: List[HorizontalLine],
        segments: List[_Segment],
        line_of_var: Dict[int, VerticalLine],
        coupling_rows: Dict[int, Set[int]],
        realized: Dict[Edge, List[Tuple[int, int]]],
    ) -> List[Tuple[int, List[int]]]:
        """Retry failed merged requirements one target at a time.

        Only vertical owners can split (an auxiliary chain must stay a
        single connected segment).
        """
        still_failed: List[Tuple[int, List[int]]] = []
        for owner, targets in pending:
            if owner not in line_of_var:
                still_failed.append((owner, targets))
                continue
            unplaced: List[int] = []
            for target in targets:
                placed = False
                for line in hlines:
                    if line not in free:
                        free[line] = [True] * self.hardware.cols
                    cells = free[line]
                    span = self._span_columns(owner, [target], line_of_var)
                    if span is None:
                        break
                    c1, c2 = span
                    if all(cells[c] for c in range(c1, c2 + 1)):
                        segment = _Segment(owner, line, c1, c2)
                        segments.append(segment)
                        for c in range(c1, c2 + 1):
                            cells[c] = False
                        self._record_couplings(
                            owner, [target], segment, line_of_var,
                            coupling_rows, realized,
                        )
                        placed = True
                        break
                if not placed:
                    unplaced.append(target)
            if unplaced:
                still_failed.append((owner, unplaced))
        return still_failed

    def _build_chains(
        self,
        line_of_var: Dict[int, VerticalLine],
        segments: List[_Segment],
        coupling_rows: Dict[int, Set[int]],
    ) -> Embedding:
        """Assemble chains: trimmed vertical spans plus owned segments."""
        hardware = self.hardware
        segments_of: Dict[int, List[_Segment]] = {}
        for segment in segments:
            segments_of.setdefault(segment.owner, []).append(segment)

        embedding = Embedding()
        for var, vline in line_of_var.items():
            rows = set(coupling_rows.get(var, set()))
            if not rows:
                rows = {hardware.rows - 1}
            line_qubits = hardware.vertical_line_qubits(vline)
            qubits: List[int] = list(line_qubits[min(rows) : max(rows) + 1])
            for segment in segments_of.get(var, []):
                qubits.extend(segment.qubits(hardware))
            embedding.set_chain(var, qubits)
        for owner, owned in segments_of.items():
            if owner in line_of_var:
                continue
            qubits = [q for segment in owned for q in segment.qubits(hardware)]
            embedding.set_chain(owner, qubits)
        return embedding

    def _classify_clauses(
        self,
        encoding: FormulaEncoding,
        candidates: List[int],
        line_of_var: Dict[int, VerticalLine],
        embedding: Embedding,
        realized: Dict[Edge, List[Tuple[int, int]]],
    ) -> Tuple[List[int], List[int]]:
        """Partition clause indices into embedded / unembedded."""
        embedded: List[int] = []
        unembedded: List[int] = list(
            range(len(candidates), len(encoding.clauses))
        )
        for k in candidates:
            clause = encoding.clauses[k]
            vars_ok = all(lit.var in line_of_var for lit in clause.lits)
            edges_ok = all(
                realized.get(edge) for edge in clause_edges(encoding, k)
            )
            aux = encoding.aux_of_clause[k]
            aux_ok = aux is None or aux in embedding
            if vars_ok and edges_ok and aux_ok:
                embedded.append(k)
            else:
                unembedded.append(k)
        return embedded, sorted(unembedded)
