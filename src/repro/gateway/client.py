"""Blocking gateway client (``hyqsat connect`` and the tests).

A deliberately small synchronous client: one socket, one JSONL
stream, no background threads.  Submissions and cancels are fire-and-
check (``submit`` returns on the matching ``ack``/``reject``), and
:meth:`GatewayClient.drain` collects streamed events and results
until every submitted job reaches a terminal state.  Anything the
server rejects fatally (protocol ``error``) raises
:class:`GatewayError` with the wire error code.
"""

from __future__ import annotations

import socket
from typing import Any, Callable, Dict, List, Optional

from repro.gateway import protocol


class GatewayError(Exception):
    """A fatal protocol ``error`` or an unexpected disconnect."""

    def __init__(self, code: str, reason: str):
        super().__init__(f"{code}: {reason}")
        self.code = code
        self.reason = reason


class GatewayReject(Exception):
    """A job-level ``reject`` (connection still healthy).

    Carries the wire code and, when the server offered one, the
    ``retry_after_s`` hint.
    """

    def __init__(self, message: Dict[str, Any]):
        code = message.get("code", "bad_message")
        reason = message.get("reason", "")
        super().__init__(f"{code}: {reason}")
        self.code = code
        self.reason = reason
        self.job_id = message.get("id")
        self.retry_after_s = message.get("retry_after_s")


class GatewayClient:
    """One authenticated gateway connection.

    Usable as a context manager; :meth:`close` says ``bye`` and waits
    for ``goodbye`` so tests can assert clean shutdown.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7465,
        api_key: Optional[str] = None,
        timeout_s: float = 60.0,
    ):
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._file = self._sock.makefile("rwb")
        self.welcome: Dict[str, Any] = {}
        self._closed = False
        #: Out-of-band event/result messages that arrived while a
        #: command was waiting for its reply; replayed by drain().
        self._buffer: List[Dict[str, Any]] = []
        self._send(protocol.hello(api_key))
        first = self._read()
        if first.get("type") == "error":
            raise GatewayError(first.get("code", "bad_message"), first.get("reason", ""))
        if first.get("type") != "welcome":
            raise GatewayError("bad_message", f"expected welcome, got {first}")
        self.welcome = first

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Wire primitives
    # ------------------------------------------------------------------

    def _send(self, message: Dict[str, Any]) -> None:
        self._file.write(protocol.encode(message))
        self._file.flush()

    def _read(self) -> Dict[str, Any]:
        line = self._file.readline()
        if not line:
            raise GatewayError("bad_message", "server closed the connection")
        return protocol.parse_line(line, from_client=False)

    def next_message(self) -> Dict[str, Any]:
        """The next server message (event/result/...); raises
        :class:`GatewayError` on a protocol ``error``."""
        message = self._read()
        if message.get("type") == "error":
            raise GatewayError(
                message.get("code", "bad_message"), message.get("reason", "")
            )
        return message

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    def submit(self, job: Dict[str, Any]) -> Dict[str, Any]:
        """Submit one job dict (job-JSONL schema; ``id`` required).

        Returns the ``ack``; raises :class:`GatewayReject` on a
        job-level denial (rate limit, quota, backpressure, duplicate).
        Any event/result messages arriving before the ack are buffered
        and replayed by :meth:`drain`.
        """
        self._send(protocol.submit(job))
        while True:
            message = self.next_message()
            if message["type"] == "ack":
                return message
            if message["type"] == "reject":
                raise GatewayReject(message)
            self._buffer.append(message)

    def cancel(self, job_id: str) -> Dict[str, Any]:
        """Cancel a queued job; returns its ``result`` (state
        ``cancelled``) or raises :class:`GatewayReject`
        (``unknown_job``)."""
        self._send(protocol.cancel(job_id))
        while True:
            message = self.next_message()
            if message["type"] == "result" and message.get("id") == job_id:
                return message
            if message["type"] == "reject":
                raise GatewayReject(message)
            self._buffer.append(message)

    def ping(self, nonce: int = 7) -> Dict[str, Any]:
        self._send(protocol.ping(nonce))
        while True:
            message = self.next_message()
            if message["type"] == "pong":
                return message
            self._buffer.append(message)

    def drain(
        self,
        job_ids: List[str],
        on_message: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Dict[str, Any]]:
        """Stream until every job in ``job_ids`` has a ``result``.

        Returns ``{job_id: outcome dict}``; ``on_message`` sees every
        event/result as it arrives (the CLI's progress printer).
        """
        waiting = set(job_ids)
        results: Dict[str, Dict[str, Any]] = {}

        def take(message: Dict[str, Any]) -> None:
            if on_message is not None:
                on_message(message)
            if message["type"] == "result" and message.get("id") in waiting:
                waiting.discard(message["id"])
                results[message["id"]] = message.get("outcome", {})

        for message in self._buffer:
            take(message)
        self._buffer = []
        while waiting:
            take(self.next_message())
        return results

    def close(self) -> Optional[Dict[str, Any]]:
        """Say ``bye``, wait for ``goodbye``, close the socket."""
        if self._closed:
            return None
        self._closed = True
        goodbye = None
        try:
            self._send(protocol.bye())
            while True:
                message = self._read()
                if message.get("type") == "goodbye":
                    goodbye = message
                    break
        except (GatewayError, protocol.ProtocolError, OSError):
            pass
        finally:
            try:
                self._file.close()
                self._sock.close()
            except OSError:
                pass
        return goodbye
