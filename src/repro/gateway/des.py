"""Fleet capacity model: the k-workers x m-QPUs makespan DES.

PR 5's :func:`~repro.service.scheduler.simulate_makespan` answers
"how long does this job set take on *k* workers sharing **one**
QPU?".  The gateway adds devices, so the planning question becomes
"how does makespan scale as the fleet grows to *m* QPUs?" — the
paper's Table II economics extended to a multi-tenant deployment.

:func:`simulate_fleet_makespan` generalises the same discrete-event
model: each profile ``(cpu_seconds, qa_calls, qpu_time_us)`` becomes
``qa_calls + 1`` equal CPU segments interleaved with ``qa_calls``
equal QPU segments; CPU segments overlap across the worker lanes and
each QPU segment runs on one of *m* device lanes.  An unpinned job
takes whichever lane finishes its segment earliest (lowest index on
ties — deterministic); a job pinned to a device (the router's
placement) always queues on its own lane.

Devices are heterogeneous: each :class:`QpuLane` carries a *speed
factor* scaling its modelled anneal time.  Factors come from
:func:`drift_speed_factors`, which turns the calibration-drift
channel of :class:`~repro.annealer.faults.FaultModel` into a
deterministic per-device slowdown — a drifted device spends extra
window time on recalibration, up to 25% at the drift-failure
threshold.  With one unit-speed lane the model reduces exactly to
``simulate_makespan`` (a property test holds this equivalence).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: Slowdown at (or past) the drift-failure threshold: a fully drifted
#: device pays 25% extra modelled time per window on recalibration.
DRIFT_RECAL_PENALTY = 0.25

#: Modelled QA calls over which a device's drift accumulates before
#: the factor is sampled (one calibration interval).
DRIFT_SAMPLE_CALLS = 100


@dataclass(frozen=True)
class QpuLane:
    """One fleet device in the DES: a name and a speed factor
    (``>= 1``; 1.0 = nominal calibration, 1.25 = fully drifted)."""

    name: str
    speed: float = 1.0

    def __post_init__(self) -> None:
        if self.speed <= 0:
            raise ValueError("speed must be positive")


def drift_speed_factors(
    num_devices: int,
    faults=None,
    seed: int = 0,
) -> List[float]:
    """Deterministic per-device speed factors from calibration drift.

    Device *i* replays ``DRIFT_SAMPLE_CALLS`` QA calls against the
    drift channel of ``faults`` (a
    :class:`~repro.annealer.faults.FaultModel`; None = nominal): each
    call triggers drift with ``drift_onset_prob`` and steps the bias
    offset by ``drift_bias_step`` in a random direction.  The final
    |offset| maps linearly onto ``[1, 1 + DRIFT_RECAL_PENALTY]``,
    saturating at ``drift_fail_threshold`` — the point where the real
    channel would fail the call outright.  Seeded per device, so a
    fleet's calibration spread is reproducible.
    """
    if num_devices < 1:
        raise ValueError("num_devices must be >= 1")
    if faults is None or faults.drift_onset_prob <= 0:
        return [1.0] * num_devices
    factors: List[float] = []
    for index in range(num_devices):
        rng = np.random.default_rng(seed + 1000003 * index)
        offset = 0.0
        for _ in range(DRIFT_SAMPLE_CALLS):
            if rng.random() < faults.drift_onset_prob:
                offset += faults.drift_bias_step * (1 if rng.random() < 0.5 else -1)
        drift = min(abs(offset) / faults.drift_fail_threshold, 1.0)
        factors.append(1.0 + DRIFT_RECAL_PENALTY * drift)
    return factors


def simulate_fleet_makespan(
    profiles: Sequence[Tuple],
    workers: int,
    lanes: Sequence[QpuLane],
) -> float:
    """Modelled makespan of a job set on *k* workers and *m* QPUs.

    Each profile is ``(cpu_seconds, qa_calls, qpu_time_us)`` or
    ``(cpu_seconds, qa_calls, qpu_time_us, lane_index)`` to pin the
    job's anneals to one device (the router's placement).  Unpinned
    jobs pick the lane with the earliest segment completion.  See the
    module docstring for the model; time is the modelled service
    clock, as in ``simulate_makespan``.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if not lanes:
        raise ValueError("need at least one QPU lane")
    jobs = []
    for profile in profiles:
        if len(profile) == 4:
            cpu_s, qa_calls, qpu_us, lane_index = profile
            if not 0 <= int(lane_index) < len(lanes):
                raise ValueError(
                    f"lane_index {lane_index} outside 0..{len(lanes) - 1}"
                )
            pinned: Optional[int] = int(lane_index)
        else:
            cpu_s, qa_calls, qpu_us = profile
            pinned = None
        calls = max(0, int(qa_calls))
        jobs.append((
            calls,
            cpu_s / (calls + 1),
            (qpu_us * 1e-6 / calls) if calls else 0.0,
            pinned,
        ))

    next_job = 0
    events: List[Tuple[float, int, int, int]] = []
    seq = 0
    qpu_free = [0.0] * len(lanes)
    makespan = 0.0

    def start_next(now: float) -> None:
        nonlocal next_job, seq
        calls, cpu_seg, _, _ = jobs[next_job]
        heapq.heappush(events, (now + cpu_seg, seq, next_job, calls))
        next_job += 1
        seq += 1

    def pick_lane(now: float, qpu_seg: float, pinned: Optional[int]) -> int:
        if pinned is not None:
            return pinned
        best, best_done = 0, None
        for index, lane in enumerate(lanes):
            done = max(now, qpu_free[index]) + qpu_seg * lane.speed
            if best_done is None or done < best_done:
                best, best_done = index, done
        return best

    while next_job < len(jobs) and next_job < workers:
        start_next(0.0)
    while events:
        now, _, index, remaining = heapq.heappop(events)
        _, cpu_seg, qpu_seg, pinned = jobs[index]
        if remaining:
            lane = pick_lane(now, qpu_seg, pinned)
            qpu_free[lane] = (
                max(now, qpu_free[lane]) + qpu_seg * lanes[lane].speed
            )
            heapq.heappush(
                events, (qpu_free[lane] + cpu_seg, seq, index, remaining - 1)
            )
            seq += 1
        else:
            makespan = max(makespan, now)
            if next_job < len(jobs):
                start_next(now)
    return makespan
