"""The gateway wire protocol: versioned JSONL over TCP.

One JSON object per ``\\n``-terminated UTF-8 line, in both directions.
The protocol is versioned by :data:`PROTOCOL_VERSION`; a client opens
with ``hello`` naming the version it speaks, and the server answers
``welcome`` (or a fatal ``error`` and closes).  The complete message
and error-code reference lives in ``docs/GATEWAY.md`` — a contract
test asserts every name declared here is documented there, so this
module is the doc's in-code twin the way ``observability.schema`` is
for docs/TELEMETRY.md.

Everything here is transport-free: pure encode/parse helpers shared
by :mod:`repro.gateway.server` and :mod:`repro.gateway.client`, plus
the type/code registries the contract test introspects.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

#: Protocol identifier a ``hello`` must present, bumped on any
#: incompatible wire change.
PROTOCOL_VERSION = "hyqsat-gateway/1"

#: Message types a client may send.
CLIENT_MESSAGE_TYPES: Tuple[str, ...] = (
    "hello",
    "submit",
    "cancel",
    "ping",
    "bye",
)

#: Message types the server may send.
SERVER_MESSAGE_TYPES: Tuple[str, ...] = (
    "welcome",
    "ack",
    "reject",
    "event",
    "result",
    "pong",
    "error",
    "goodbye",
)

#: Per-job progress events streamed inside ``event`` messages.
#: ``done`` precedes every ``result`` and carries ``state`` plus
#: ``cached`` (true = served from the persistent result cache, no
#: modelled QPU time billed).
STREAM_EVENTS: Tuple[str, ...] = (
    "routed",
    "started",
    "done",
)

#: Error codes carried by ``reject`` (job-level, connection stays up)
#: and ``error`` (protocol-level, connection closes).  Semantics are
#: specified in docs/GATEWAY.md.
ERROR_CODES: Tuple[str, ...] = (
    "bad_message",
    "unsupported_protocol",
    "unauthorized",
    "rate_limited",
    "quota_exhausted",
    "backpressure",
    "duplicate_id",
    "unknown_job",
    "shutting_down",
)

#: Byte cap on one wire line; a line past this is a ``bad_message``
#: (keeps a garbage peer from ballooning the read buffer).
MAX_LINE_BYTES = 4 * 1024 * 1024


class ProtocolError(Exception):
    """A malformed or out-of-contract message.

    ``code`` is one of :data:`ERROR_CODES`; the server folds it into
    an ``error`` message, the client raises it to the caller.
    """

    def __init__(self, code: str, reason: str):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(f"{code}: {reason}")
        self.code = code
        self.reason = reason


def encode(message: Dict[str, Any]) -> bytes:
    """One wire line (JSON + newline) for a message dict."""
    return (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")


def parse_line(line: bytes, *, from_client: bool) -> Dict[str, Any]:
    """Decode and validate one wire line.

    Checks the JSON shape and that ``type`` is a known message type
    for the sending side; field-level validation stays with the
    handler that knows the message.  Raises :class:`ProtocolError`
    (``bad_message``) otherwise.
    """
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("bad_message", f"line exceeds {MAX_LINE_BYTES} bytes")
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError("bad_message", f"not a JSON line: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("bad_message", "message must be a JSON object")
    kind = payload.get("type")
    known = CLIENT_MESSAGE_TYPES if from_client else SERVER_MESSAGE_TYPES
    if kind not in known:
        raise ProtocolError("bad_message", f"unknown message type {kind!r}")
    return payload


# ---------------------------------------------------------------------------
# Message constructors (the single spelling of each wire shape)
# ---------------------------------------------------------------------------


def hello(api_key: Optional[str] = None) -> Dict[str, Any]:
    message: Dict[str, Any] = {"type": "hello", "protocol": PROTOCOL_VERSION}
    if api_key is not None:
        message["api_key"] = api_key
    return message


def welcome(fleet, limits: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "type": "welcome",
        "protocol": PROTOCOL_VERSION,
        "fleet": list(fleet),
        "limits": limits,
    }


def submit(job: Dict[str, Any]) -> Dict[str, Any]:
    return {"type": "submit", "job": job}


def ack(job_id: str, queue_depth: int) -> Dict[str, Any]:
    return {"type": "ack", "id": job_id, "queue_depth": queue_depth}


def reject(
    code: str,
    reason: str,
    job_id: Optional[str] = None,
    retry_after_s: Optional[float] = None,
) -> Dict[str, Any]:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    message: Dict[str, Any] = {"type": "reject", "code": code, "reason": reason}
    if job_id is not None:
        message["id"] = job_id
    if retry_after_s is not None:
        message["retry_after_s"] = round(retry_after_s, 3)
    return message


def event(job_id: str, name: str, **attrs: Any) -> Dict[str, Any]:
    if name not in STREAM_EVENTS:
        raise ValueError(f"unknown stream event {name!r}")
    message: Dict[str, Any] = {"type": "event", "id": job_id, "event": name}
    if attrs:
        message["attrs"] = attrs
    return message


def result(job_id: str, outcome: Dict[str, Any]) -> Dict[str, Any]:
    return {"type": "result", "id": job_id, "outcome": outcome}


def cancel(job_id: str) -> Dict[str, Any]:
    return {"type": "cancel", "id": job_id}


def ping(nonce: int = 0) -> Dict[str, Any]:
    return {"type": "ping", "nonce": nonce}


def pong(nonce: int = 0) -> Dict[str, Any]:
    return {"type": "pong", "nonce": nonce}


def bye() -> Dict[str, Any]:
    return {"type": "bye"}


def goodbye(served: int) -> Dict[str, Any]:
    return {"type": "goodbye", "served": served}


def error(code: str, reason: str) -> Dict[str, Any]:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return {"type": "error", "code": code, "reason": reason}
