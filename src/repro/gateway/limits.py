"""Per-tenant admission limits: request rate and QA-time quota.

Every connection authenticates (or not) as a *tenant* — the API key
from its ``hello``, or the anonymous tenant when the gateway runs
open.  Two independent limits protect the fleet from any one tenant:

- a **token bucket** on submissions (``rate_per_s`` steady state,
  ``burst`` capacity), refilled continuously on an injectable
  monotonic clock so tests replay deterministically;
- a **QA-time quota** in modelled device microseconds: the sum of
  ``qpu_time_us`` actually consumed by the tenant's finished jobs,
  checked at admission.  Like every QPU figure in this repo it is
  *modelled* device time, not wall clock (see docs/SERVICE.md).

Both answer at admission time with an :data:`~repro.gateway.protocol.ERROR_CODES`
code (``rate_limited`` / ``quota_exhausted``) so the server can turn
a denial into a ``reject`` with retry-after, keeping the connection
alive — admission control, not punishment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant limits (one policy shared by all tenants).

    ``rate_per_s`` / ``burst`` bound submissions; ``qa_budget_us``
    caps total modelled QA microseconds (None = unmetered).
    """

    rate_per_s: float = 20.0
    burst: int = 40
    qa_budget_us: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.qa_budget_us is not None and self.qa_budget_us <= 0:
            raise ValueError("qa_budget_us must be positive when set")


class TokenBucket:
    """Continuous-refill token bucket on an injectable clock."""

    def __init__(
        self,
        rate_per_s: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last)
        self._tokens = min(float(self.burst), self._tokens + elapsed * self.rate_per_s)
        self._last = now

    def try_acquire(self) -> Tuple[bool, float]:
        """Take one token: ``(True, 0.0)`` or ``(False, retry_after_s)``."""
        self._refill(self._clock())
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self._tokens) / self.rate_per_s

    @property
    def tokens(self) -> float:
        self._refill(self._clock())
        return self._tokens


class TenantLedger:
    """Admission state for every tenant the gateway has seen.

    Buckets and spend counters are created lazily per tenant key;
    anonymous traffic shares the ``None`` tenant, so an open gateway
    still has one global rate limit.
    """

    def __init__(
        self,
        policy: TenantPolicy,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.policy = policy
        self._clock = clock
        self._buckets: Dict[Optional[str], TokenBucket] = {}
        self._spent_us: Dict[Optional[str], float] = {}

    def _bucket(self, tenant: Optional[str]) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(
                self.policy.rate_per_s, self.policy.burst, self._clock
            )
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: Optional[str]) -> Tuple[Optional[str], float]:
        """Check one submission: ``(None, 0.0)`` admits; otherwise an
        error code (``rate_limited`` / ``quota_exhausted``) and, for
        rate denials, the seconds until a token frees up."""
        budget = self.policy.qa_budget_us
        if budget is not None and self.spent_us(tenant) >= budget:
            return "quota_exhausted", 0.0
        ok, retry_after = self._bucket(tenant).try_acquire()
        if not ok:
            return "rate_limited", retry_after
        return None, 0.0

    def charge(self, tenant: Optional[str], qpu_time_us: float) -> None:
        """Bill a finished job's modelled QA time to its tenant."""
        if qpu_time_us > 0:
            self._spent_us[tenant] = self.spent_us(tenant) + qpu_time_us

    def spent_us(self, tenant: Optional[str]) -> float:
        return self._spent_us.get(tenant, 0.0)

    def remaining_us(self, tenant: Optional[str]) -> Optional[float]:
        if self.policy.qa_budget_us is None:
            return None
        return max(0.0, self.policy.qa_budget_us - self.spent_us(tenant))
