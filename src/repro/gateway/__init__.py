"""The network-facing solver gateway (docs/GATEWAY.md).

The service tier (PRs 5/7) is in-process: ``hyqsat serve`` runs a job
file and exits.  The gateway makes that stack long-running and
network-facing — the deployment shape Krüger & Mauerer's QA software
component model assumes (PAPERS.md) — speaking a versioned JSONL
protocol over TCP:

- :mod:`repro.gateway.protocol` — wire messages, error codes, and the
  version string (the in-code twin of docs/GATEWAY.md);
- :mod:`repro.gateway.limits` — per-tenant token-bucket rate limits
  and modelled-microsecond QA quotas;
- :mod:`repro.gateway.fleet` — the heterogeneous QPU fleet and its
  topology-aware router (smallest device whose embedding fits);
- :mod:`repro.gateway.des` — the k-workers x m-QPUs makespan model
  with calibration-drift speed factors;
- :mod:`repro.gateway.server` — the asyncio server behind
  ``hyqsat gateway``;
- :mod:`repro.gateway.client` — the blocking client behind
  ``hyqsat connect``.
"""

from repro.gateway.client import GatewayClient, GatewayError, GatewayReject
from repro.gateway.des import (
    QpuLane,
    drift_speed_factors,
    simulate_fleet_makespan,
)
from repro.gateway.fleet import (
    FleetRouter,
    GatewayQpu,
    RoutingDecision,
    parse_fleet_spec,
)
from repro.gateway.limits import TenantLedger, TenantPolicy, TokenBucket
from repro.gateway.protocol import (
    CLIENT_MESSAGE_TYPES,
    ERROR_CODES,
    PROTOCOL_VERSION,
    SERVER_MESSAGE_TYPES,
    STREAM_EVENTS,
    ProtocolError,
)
from repro.gateway.server import GatewayConfig, GatewayServer, GatewayStats

__all__ = [
    "CLIENT_MESSAGE_TYPES",
    "ERROR_CODES",
    "FleetRouter",
    "GatewayClient",
    "GatewayConfig",
    "GatewayError",
    "GatewayQpu",
    "GatewayReject",
    "GatewayServer",
    "GatewayStats",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QpuLane",
    "RoutingDecision",
    "SERVER_MESSAGE_TYPES",
    "STREAM_EVENTS",
    "TenantLedger",
    "TenantPolicy",
    "TokenBucket",
    "drift_speed_factors",
    "parse_fleet_spec",
    "simulate_fleet_makespan",
]
