"""The heterogeneous QPU fleet and its topology-aware router.

PR 7's :class:`~repro.service.scheduler.FleetDevice` is a *failover*
fleet: N identical devices behind one job, racing faults.  The
gateway generalises the idea to a *capacity* fleet: m QPUs of
different topologies and grid sizes serving many jobs at once, each
with its own :class:`~repro.service.scheduler.QpuScheduler` arbiter.

Routing is topology-aware, following the paper's own embedding
model: the HyQSAT line embedder (Section IV-B) decides how many of a
formula's clauses fit a given lattice, so the router runs exactly
that embedder against each device, cheapest-first, and places the job
on the **smallest device whose embedding fully fits** (Bian et al.
2018's sizing rule).  When nothing fully fits, the job falls back to
the device embedding the most clauses — the frontend batches the rest
across QA calls, as it does on any undersized lattice.

A placement pins ``topology``/``grid`` on the job's
:class:`~repro.service.JobSpec`, which is what makes a gateway solve
replayable bit-identically as ``hyqsat solve --topology T --grid N``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.service.scheduler import QpuScheduler

#: Fleet-spec grammar: comma-separated ``topology:grid`` atoms, e.g.
#: ``chimera:8,chimera:16,pegasus:8``.
_SPEC_HELP = "expected 'topology:grid[,topology:grid...]', e.g. 'chimera:8,pegasus:8'"


@dataclass(frozen=True)
class GatewayQpu:
    """One fleet member: a named simulated QPU of a given lattice."""

    name: str
    topology: str
    grid: int

    @property
    def num_qubits(self) -> int:
        return self.grid * self.grid * 2 * 4

    def describe(self) -> Dict[str, object]:
        """The ``welcome`` message's fleet entry."""
        return {
            "device": self.name,
            "topology": self.topology,
            "grid": self.grid,
            "qubits": self.num_qubits,
        }


def parse_fleet_spec(spec: str) -> List[GatewayQpu]:
    """Parse ``--fleet`` into ordered :class:`GatewayQpu` members.

    Names are ``<topology><grid>`` with ``-N`` suffixes on repeats
    (``chimera:8,chimera:8`` -> ``chimera8``, ``chimera8-2``).
    """
    from repro.topology import TOPOLOGIES

    members: List[GatewayQpu] = []
    seen: Dict[str, int] = {}
    for atom in spec.split(","):
        atom = atom.strip()
        if not atom:
            continue
        topology, _, grid_text = atom.partition(":")
        if topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {topology!r} in fleet spec {spec!r}; "
                f"known: {sorted(TOPOLOGIES)}"
            )
        try:
            grid = int(grid_text) if grid_text else 16
        except ValueError:
            raise ValueError(f"bad grid {grid_text!r} in fleet spec {spec!r}; {_SPEC_HELP}") from None
        if grid < 1:
            raise ValueError(f"grid must be >= 1 in fleet spec {spec!r}")
        base = f"{topology}{grid}"
        seen[base] = seen.get(base, 0) + 1
        name = base if seen[base] == 1 else f"{base}-{seen[base]}"
        members.append(GatewayQpu(name=name, topology=topology, grid=grid))
    if not members:
        raise ValueError(f"empty fleet spec {spec!r}; {_SPEC_HELP}")
    return members


@dataclass(frozen=True)
class RoutingDecision:
    """Where one formula landed and how well it embedded there."""

    qpu: GatewayQpu
    #: Clauses the HyQSAT embedder placed on this lattice in one pass.
    embedded_clauses: int
    total_clauses: int
    #: True when every clause fit (the smallest-fit rule applied);
    #: False means best-partial fallback.
    fits: bool


@dataclass
class FleetRouterStats:
    """Routing counters (the ``hyqsat_fleet_*`` metrics source)."""

    routed: Dict[str, int] = field(default_factory=dict)
    fallbacks: int = 0


class FleetRouter:
    """Places jobs on the smallest fleet device they embed into.

    Capacity probes run the real HyQSAT line embedder per (formula,
    device) and are memoised by formula fingerprint, so a stream of
    identical instances costs one probe per device.  Each member owns
    a :class:`QpuScheduler`, giving the gateway m independent anneal
    arbiters (vs the service's single shared QPU).
    """

    def __init__(
        self,
        qpus: List[GatewayQpu],
        qpu_budget_us: Optional[float] = None,
    ):
        if not qpus:
            raise ValueError("fleet must have at least one QPU")
        self.qpus = list(qpus)
        self.schedulers: Dict[str, QpuScheduler] = {
            qpu.name: QpuScheduler(budget_us=qpu_budget_us) for qpu in self.qpus
        }
        self.stats = FleetRouterStats()
        # Probe order: smallest lattice first; denser topology wins
        # ties (same capacity for the line embedder, shorter chains).
        self._probe_order = sorted(
            self.qpus,
            key=lambda q: (q.num_qubits, 0 if q.topology == "pegasus" else 1),
        )
        self._probe_cache: Dict[Tuple[str, str], Tuple[int, int]] = {}
        self._hardware_cache: Dict[Tuple[str, int], object] = {}

    def _hardware(self, qpu: GatewayQpu):
        from repro.topology import build_hardware

        key = (qpu.topology, qpu.grid)
        if key not in self._hardware_cache:
            self._hardware_cache[key] = build_hardware(qpu.topology, qpu.grid)
        return self._hardware_cache[key]

    def _probe(self, formula, fp: str, qpu: GatewayQpu) -> Tuple[int, int]:
        """(embedded, total) clauses of one formula on one device."""
        key = (fp, qpu.name)
        cached = self._probe_cache.get(key)
        if cached is not None:
            return cached
        from repro.embedding import HyQSatEmbedder
        from repro.qubo import encode_formula

        encoding = encode_formula(list(formula.clauses), formula.num_vars)
        embedded = HyQSatEmbedder(self._hardware(qpu)).embed(encoding)
        placed = (embedded.num_embedded, len(encoding.clauses))
        self._probe_cache[key] = placed
        return placed

    def route(self, formula) -> RoutingDecision:
        """Pick the device for one formula (smallest full fit, else
        the best partial) and record the placement."""
        from repro.sat.cnf import fingerprint

        fp = fingerprint(formula)
        best: Optional[RoutingDecision] = None
        for qpu in self._probe_order:
            embedded, total = self._probe(formula, fp, qpu)
            if embedded >= total:
                best = RoutingDecision(qpu, embedded, total, fits=True)
                break
            if best is None or embedded > best.embedded_clauses:
                best = RoutingDecision(qpu, embedded, total, fits=False)
        assert best is not None  # fleet is non-empty
        self.stats.routed[best.qpu.name] = self.stats.routed.get(best.qpu.name, 0) + 1
        if not best.fits:
            self.stats.fallbacks += 1
        return best

    def scheduler_for(self, qpu: GatewayQpu) -> QpuScheduler:
        return self.schedulers[qpu.name]
