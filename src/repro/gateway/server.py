"""The asyncio gateway server: socket -> queue -> fleet.

One event loop owns everything except the solves themselves:
connection handlers parse and answer protocol messages, admitted jobs
enter the shared :class:`~repro.service.queue.JobQueue` (the same
admission/priority/deadline engine ``hyqsat serve`` uses), and a
dispatcher coroutine feeds popped jobs to a thread pool bounded by
the worker count.  Each solve runs
:func:`~repro.service.jobs.run_job` with the
:class:`~repro.service.scheduler.QpuScheduler` of the fleet device
the router picked — so per seed, a gateway solve is bit-identical to
``hyqsat solve`` with the placement's ``--topology``/``--grid``.

Observability follows the service's single-threaded rule: spans,
events, and metrics are emitted only from the event loop thread
(worker threads never touch the bundle), under the ``gateway.session``
root span documented in docs/TELEMETRY.md.

Backpressure and fairness are admission-time: the tenant ledger
answers ``rate_limited``/``quota_exhausted`` and a full queue answers
``backpressure``, each as a ``reject`` carrying ``retry_after_s`` (an
EWMA of recent run times scaled by queue depth) while the connection
stays open.  Shutdown is a drain: stop accepting, let queued and
running jobs finish (bounded by ``drain_grace_s``), stream their
results, then say ``goodbye``.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.gateway import protocol
from repro.gateway.fleet import FleetRouter, GatewayQpu, parse_fleet_spec
from repro.gateway.limits import TenantLedger, TenantPolicy
from repro.service.jobs import JobOutcome, JobSpec, run_job
from repro.service.queue import AdmissionError, JobQueue

#: Fallback retry-after before any job has finished (seconds).
_INITIAL_RUN_EWMA_S = 1.0
#: EWMA smoothing for observed run times.
_RUN_EWMA_ALPHA = 0.3


@dataclass
class GatewayConfig:
    """Gateway deployment knobs (every ``hyqsat gateway`` flag)."""

    host: str = "127.0.0.1"
    port: int = 7465
    workers: int = 2
    max_depth: Optional[int] = 64
    fleet: str = "chimera:16"
    rate_per_s: float = 20.0
    burst: int = 40
    tenant_budget_us: Optional[float] = None
    #: Accepted API keys; empty = open gateway (anonymous tenant).
    api_keys: tuple = ()
    #: Fixed retry-after hint; None = estimate from load.
    retry_after_s: Optional[float] = None
    #: Seconds to wait for in-flight jobs at shutdown.
    drain_grace_s: float = 30.0
    #: Shared per-device modelled QPU budget (None = unmetered).
    qpu_budget_us: Optional[float] = None
    #: SQLite file of the persistent result cache
    #: (:class:`~repro.cache.PersistentResultStore`); None = no cache.
    cache_db: Optional[str] = None
    #: LRU cap on exact-result rows in the cache (None = unbounded).
    cache_cap: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.max_depth is not None and self.max_depth < 1:
            raise ValueError("max_depth must be >= 1 when set")
        if self.drain_grace_s < 0:
            raise ValueError("drain_grace_s must be >= 0")
        if self.cache_cap is not None and self.cache_cap < 1:
            raise ValueError("cache_cap must be >= 1 when set")


@dataclass
class GatewayStats:
    """Lifetime counters (mirrored into ``hyqsat_gateway_*`` metrics)."""

    connections: int = 0
    active_connections: int = 0
    messages: Dict[str, int] = field(default_factory=dict)
    sent: Dict[str, int] = field(default_factory=dict)
    jobs: Dict[str, int] = field(default_factory=dict)
    rate_limited: int = 0
    quota_denied: int = 0
    backpressure_rejects: int = 0


class _Connection:
    """Per-connection state: writer, tenant, and its submitted jobs."""

    def __init__(self, writer: asyncio.StreamWriter, peer: str):
        self.writer = writer
        self.peer = peer
        self.tenant: Optional[str] = None
        self.send_lock = asyncio.Lock()
        self.job_ids: Set[str] = set()
        self.closed = False

    async def send(self, message: Dict[str, Any]) -> None:
        if self.closed:
            return
        async with self.send_lock:
            try:
                self.writer.write(protocol.encode(message))
                await self.writer.drain()
            except (ConnectionError, RuntimeError):
                self.closed = True


class GatewayServer:
    """The long-running TCP gateway (``hyqsat gateway``)."""

    def __init__(self, config: GatewayConfig, observability=None):
        from repro.observability import DISABLED, declare_gateway_metrics

        self.config = config
        self.observability = observability or DISABLED
        if self.observability.metrics is not None:
            declare_gateway_metrics(self.observability.metrics)
        self.fleet: List[GatewayQpu] = parse_fleet_spec(config.fleet)
        self.router = FleetRouter(self.fleet, qpu_budget_us=config.qpu_budget_us)
        self.queue = JobQueue(max_depth=config.max_depth)
        self.ledger = TenantLedger(
            TenantPolicy(
                rate_per_s=config.rate_per_s,
                burst=config.burst,
                qa_budget_us=config.tenant_budget_us,
            )
        )
        self.stats = GatewayStats()
        #: Persistent result cache shared by every tenant (None when
        #: disabled).  Lookups/records run on executor threads; the
        #: store is internally locked and the SQLite file is WAL-mode,
        #: so a fleet of gateways may share one path.
        self.cache = None
        if config.cache_db is not None:
            from repro.cache import PersistentResultStore

            self.cache = PersistentResultStore(
                config.cache_db, max_entries=config.cache_cap
            )
        self._executor = ThreadPoolExecutor(
            max_workers=config.workers, thread_name_prefix="gateway-worker"
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._work = asyncio.Event()
        self._draining = False
        self._pending = 0
        self._inflight: Set[asyncio.Task] = set()
        #: job_id -> (connection, tenant) for result routing.
        self._owners: Dict[str, _Connection] = {}
        self._run_ewma_s = _INITIAL_RUN_EWMA_S
        self._served = 0

        if self.observability.metrics is not None:
            self.observability.metrics.gauge("hyqsat_fleet_devices").set(
                len(self.fleet)
            )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start the dispatcher."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral pick)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "server not started"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def shutdown(self) -> None:
        """Drain: stop accepting, finish queued + running jobs (up to
        ``drain_grace_s``), then stop the dispatcher and executor."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.config.drain_grace_s
        while (self._pending > 0 or self._inflight) and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        self.queue.close()
        self._work.set()
        if self._dispatcher is not None:
            await self._dispatcher
        if self._inflight:
            await asyncio.wait(self._inflight, timeout=self.config.drain_grace_s)
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self.cache is not None:
            self._flush_cache_metrics()
            self.cache.close()

    def _flush_cache_metrics(self) -> None:
        """Fold the cache's counters into ``hyqsat_cache_*`` (event
        loop thread, once, at drain time)."""
        metrics = self.observability.metrics
        if metrics is None or self.cache is None:
            return
        cstats = self.cache.stats
        if cstats.hits:
            metrics.counter("hyqsat_cache_hits_total").inc(cstats.hits)
        if cstats.misses:
            metrics.counter("hyqsat_cache_misses_total").inc(cstats.misses)
        for kind, count in sorted(cstats.subsumption_hits.items()):
            metrics.counter(
                "hyqsat_cache_subsumption_hits_total"
            ).labels(kind=kind).inc(count)
        if cstats.warm_starts:
            metrics.counter("hyqsat_cache_warm_starts_total").inc(
                cstats.warm_starts
            )
        if cstats.warm_start_conflicts_saved:
            metrics.counter(
                "hyqsat_cache_warm_start_conflicts_saved_total"
            ).inc(cstats.warm_start_conflicts_saved)
        if cstats.evictions:
            metrics.counter("hyqsat_cache_evictions_total").inc(
                cstats.evictions
            )
        try:
            metrics.gauge("hyqsat_cache_entries").set(
                self.cache.entry_count()
            )
        except Exception:  # noqa: BLE001 — DB already closed
            pass

    # ------------------------------------------------------------------
    # Observability helpers (event loop thread only)
    # ------------------------------------------------------------------

    def _metric(self, name: str):
        metrics = self.observability.metrics
        return None if metrics is None else metrics.counter(name)

    def _count_message(self, kind: str) -> None:
        self.stats.messages[kind] = self.stats.messages.get(kind, 0) + 1
        counter = self._metric("hyqsat_gateway_messages_total")
        if counter is not None:
            counter.labels(type=kind).inc()

    def _count_sent(self, kind: str) -> None:
        self.stats.sent[kind] = self.stats.sent.get(kind, 0) + 1
        counter = self._metric("hyqsat_gateway_stream_events_total")
        if counter is not None:
            counter.labels(type=kind).inc()

    def _count_job(self, state: str) -> None:
        self.stats.jobs[state] = self.stats.jobs.get(state, 0) + 1
        counter = self._metric("hyqsat_gateway_jobs_total")
        if counter is not None:
            counter.labels(state=state).inc()

    async def _send(self, conn: _Connection, message: Dict[str, Any]) -> None:
        self._count_sent(message["type"])
        await conn.send(message)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        peer = f"{peername[0]}:{peername[1]}" if peername else "?"
        conn = _Connection(writer, peer)
        tracer = self.observability.tracer
        span = tracer.start_span("gateway.session", peer=peer)
        self.stats.connections += 1
        self.stats.active_connections += 1
        counter = self._metric("hyqsat_gateway_connections_total")
        if counter is not None:
            counter.inc()
        gauge = (
            self.observability.metrics.gauge("hyqsat_gateway_active_connections")
            if self.observability.metrics is not None
            else None
        )
        if gauge is not None:
            gauge.set(self.stats.active_connections)
        messages = 0
        try:
            if not await self._handshake(conn, reader):
                return
            tracer.event("gateway.connect", peer=peer, tenant=conn.tenant)
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, asyncio.IncompleteReadError):
                    break
                if not line:
                    break
                messages += 1
                try:
                    payload = protocol.parse_line(line, from_client=True)
                except protocol.ProtocolError as bad:
                    self._count_message("invalid")
                    await self._send(conn, protocol.error(bad.code, bad.reason))
                    break
                self._count_message(payload["type"])
                if payload["type"] == "bye":
                    await self._send(conn, protocol.goodbye(self._served))
                    break
                await self._handle_message(conn, payload)
        finally:
            conn.closed = True
            for job_id in conn.job_ids:
                self._owners.pop(job_id, None)
            tracer.event("gateway.disconnect", peer=peer, messages=messages)
            span.end(tenant=conn.tenant, messages=messages)
            self.stats.active_connections -= 1
            if gauge is not None:
                gauge.set(self.stats.active_connections)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _handshake(
        self, conn: _Connection, reader: asyncio.StreamReader
    ) -> bool:
        """Read and answer ``hello``; False closes the connection."""
        try:
            line = await asyncio.wait_for(reader.readline(), timeout=10.0)
        except (asyncio.TimeoutError, ConnectionError):
            return False
        if not line:
            return False
        try:
            payload = protocol.parse_line(line, from_client=True)
        except protocol.ProtocolError as bad:
            await self._send(conn, protocol.error(bad.code, bad.reason))
            return False
        self._count_message(payload["type"])
        if payload["type"] != "hello":
            await self._send(
                conn,
                protocol.error("bad_message", "first message must be 'hello'"),
            )
            return False
        if payload.get("protocol") != protocol.PROTOCOL_VERSION:
            await self._send(
                conn,
                protocol.error(
                    "unsupported_protocol",
                    f"server speaks {protocol.PROTOCOL_VERSION}",
                ),
            )
            return False
        api_key = payload.get("api_key")
        if self.config.api_keys:
            if api_key not in self.config.api_keys:
                await self._send(
                    conn,
                    protocol.error("unauthorized", "unknown or missing api_key"),
                )
                return False
            conn.tenant = api_key
        else:
            conn.tenant = api_key  # open gateway: key optional, still a tenant
        limits = {
            "rate_per_s": self.ledger.policy.rate_per_s,
            "burst": self.ledger.policy.burst,
            "qa_budget_us": self.ledger.policy.qa_budget_us,
        }
        await self._send(
            conn,
            protocol.welcome(
                [qpu.describe() for qpu in self.fleet], limits
            ),
        )
        return True

    async def _handle_message(
        self, conn: _Connection, payload: Dict[str, Any]
    ) -> None:
        kind = payload["type"]
        if kind == "ping":
            await self._send(conn, protocol.pong(payload.get("nonce", 0)))
        elif kind == "hello":
            await self._send(
                conn, protocol.error("bad_message", "already said hello")
            )
            conn.closed = True
        elif kind == "submit":
            await self._handle_submit(conn, payload)
        elif kind == "cancel":
            await self._handle_cancel(conn, payload)

    # ------------------------------------------------------------------
    # Submission and results
    # ------------------------------------------------------------------

    def _retry_after(self) -> float:
        if self.config.retry_after_s is not None:
            return self.config.retry_after_s
        depth = len(self.queue)
        return max(
            0.1, (depth + 1) * self._run_ewma_s / self.config.workers
        )

    async def _handle_submit(
        self, conn: _Connection, payload: Dict[str, Any]
    ) -> None:
        tracer = self.observability.tracer
        job = payload.get("job")
        if not isinstance(job, dict):
            await self._send(
                conn,
                protocol.reject("bad_message", "submit needs a 'job' object"),
            )
            return
        job_id = job.get("id") or job.get("job_id")
        try:
            spec = JobSpec.from_json(json.dumps(job))
        except (ValueError, TypeError) as error:
            await self._send(
                conn,
                protocol.reject("bad_message", str(error), job_id=job_id),
            )
            return
        if self._draining:
            await self._send(
                conn,
                protocol.reject(
                    "shutting_down", "gateway is draining", job_id=spec.job_id
                ),
            )
            return
        denial, retry_after = self.ledger.admit(conn.tenant)
        if denial is not None:
            if denial == "rate_limited":
                self.stats.rate_limited += 1
                counter = self._metric("hyqsat_gateway_rate_limited_total")
            else:
                self.stats.quota_denied += 1
                counter = self._metric("hyqsat_gateway_quota_denied_total")
            if counter is not None:
                counter.inc()
            tracer.event("gateway.reject", job_id=spec.job_id, code=denial)
            await self._send(
                conn,
                protocol.reject(
                    denial,
                    "tenant rate limit exceeded"
                    if denial == "rate_limited"
                    else "tenant QA budget exhausted",
                    job_id=spec.job_id,
                    retry_after_s=retry_after or self._retry_after(),
                ),
            )
            return
        try:
            self.queue.push(spec)
        except AdmissionError as error:
            reason = str(error)
            if "duplicate" in reason:
                code = "duplicate_id"
                retry: Optional[float] = None
            elif "closed" in reason:
                code = "shutting_down"
                retry = None
            else:
                code = "backpressure"
                retry = self._retry_after()
                self.stats.backpressure_rejects += 1
                counter = self._metric(
                    "hyqsat_gateway_backpressure_rejects_total"
                )
                if counter is not None:
                    counter.inc()
            tracer.event("gateway.reject", job_id=spec.job_id, code=code)
            await self._send(
                conn,
                protocol.reject(
                    code, reason, job_id=spec.job_id, retry_after_s=retry
                ),
            )
            return
        self._pending += 1
        conn.job_ids.add(spec.job_id)
        self._owners[spec.job_id] = conn
        tracer.event(
            "gateway.submit", job_id=spec.job_id, tenant=conn.tenant
        )
        self._work.set()
        await self._send(
            conn, protocol.ack(spec.job_id, queue_depth=len(self.queue))
        )

    async def _handle_cancel(
        self, conn: _Connection, payload: Dict[str, Any]
    ) -> None:
        job_id = payload.get("id")
        if not isinstance(job_id, str) or not job_id:
            await self._send(
                conn, protocol.reject("bad_message", "cancel needs an 'id'")
            )
            return
        if self.queue.cancel(job_id):
            self._pending -= 1
            self.observability.tracer.event("gateway.cancel", job_id=job_id)
            await self._finalise(
                JobOutcome(
                    job_id=job_id, state="cancelled", error="cancelled by client"
                )
            )
        else:
            await self._send(
                conn,
                protocol.reject(
                    "unknown_job",
                    f"job {job_id!r} is not queued (unknown, running, or done)",
                    job_id=job_id,
                ),
            )

    async def _finalise(self, outcome: JobOutcome) -> None:
        """Count a terminal outcome and stream it to its owner."""
        self._count_job(outcome.state)
        self._served += 1
        if outcome.state == "done" and outcome.run_seconds > 0:
            self._run_ewma_s = (
                (1 - _RUN_EWMA_ALPHA) * self._run_ewma_s
                + _RUN_EWMA_ALPHA * outcome.run_seconds
            )
        if not outcome.cached:
            # Cache hits replay stored counters; the original solve
            # already billed that modelled QPU time — never twice.
            self.ledger.charge(
                getattr(self._owners.get(outcome.job_id), "tenant", None),
                outcome.qpu_time_us,
            )
        conn = self._owners.pop(outcome.job_id, None)
        if conn is not None:
            conn.job_ids.discard(outcome.job_id)
            await self._send(
                conn,
                protocol.event(
                    outcome.job_id,
                    "done",
                    state=outcome.state,
                    cached=bool(outcome.cached),
                ),
            )
            payload = {
                key: value
                for key, value in outcome.as_dict().items()
                if value is not None
            }
            await self._send(conn, protocol.result(outcome.job_id, payload))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _run_with_cache(self, spec: JobSpec, scheduler) -> JobOutcome:
        """Executor-side solve wrapper: cache lookup -> solve -> record.

        Runs entirely on a worker thread (the store is internally
        locked); cache failures degrade to a plain solve, never an
        error.  A hit returns without solving — and without touching
        the scheduler, so modelled QPU time is never double-billed.
        """
        if self.cache is None or spec.classic:
            return run_job(spec, scheduler)
        key = None
        formula = None
        warm = None
        try:
            formula = spec.load_formula()
            key = spec.solve_key(formula)
            hit = self.cache.lookup(key, spec, formula)
            if hit is not None:
                return hit
            warm = self.cache.warm_clauses(formula)
        except Exception:  # noqa: BLE001 — cache is advisory
            key = formula = warm = None
        outcome = run_job(
            spec,
            scheduler,
            warm_clauses=warm.clauses if warm is not None else None,
            collect_learned=True,
        )
        if warm is not None and outcome.warm_clauses:
            self.cache.note_warm_start(
                warm.donor_conflicts, outcome.conflicts or 0
            )
        if key is not None and formula is not None:
            try:
                self.cache.record(key, formula, outcome)
            except Exception:  # noqa: BLE001
                pass
        outcome.learned = None
        return outcome

    async def _dispatch_loop(self) -> None:
        """Pop admitted jobs and run them on the thread pool, at most
        ``workers`` concurrently (the pool itself is the bound; the
        loop just avoids popping faster than slots free up)."""
        while True:
            await self._work.wait()
            spec, expired, waited = self.queue.pop(timeout=0)
            for dead in expired:
                self._pending -= 1
                await self._finalise(
                    JobOutcome(
                        job_id=dead.job_id,
                        state="expired",
                        error="queue deadline exceeded",
                        seed=dead.seed,
                        wait_seconds=dead.deadline_s or 0.0,
                    )
                )
            if spec is None:
                if self.queue._closed and self._pending <= 0:
                    return
                self._work.clear()
                continue
            while len(self._inflight) >= self.config.workers:
                await asyncio.wait(
                    self._inflight, return_when=asyncio.FIRST_COMPLETED
                )
            task = asyncio.get_running_loop().create_task(
                self._execute(spec, waited)
            )
            self._inflight.add(task)
            task.add_done_callback(self._inflight.discard)

    async def _execute(self, spec: JobSpec, waited_s: float) -> None:
        loop = asyncio.get_running_loop()
        conn = self._owners.get(spec.job_id)
        decision = None
        pinned = spec.topology is not None or spec.grid is not None
        if pinned and not spec.classic:
            # The client chose its lattice: respect it, and share the
            # matching device's scheduler when the fleet has one.
            scheduler = None
            for qpu in self.fleet:
                if (
                    qpu.topology == (spec.topology or "chimera")
                    and qpu.grid == (spec.grid or 16)
                ):
                    scheduler = self.router.scheduler_for(qpu)
                    break
            if conn is not None:
                await self._send(conn, protocol.event(spec.job_id, "started"))
            outcome = await loop.run_in_executor(
                self._executor, self._run_with_cache, spec, scheduler
            )
            outcome.wait_seconds = waited_s
            self._pending -= 1
            await self._finalise(outcome)
            return
        if not spec.classic:
            try:
                formula = await loop.run_in_executor(
                    self._executor, spec.load_formula
                )
                decision = await loop.run_in_executor(
                    self._executor, self.router.route, formula
                )
            except Exception as error:  # noqa: BLE001 — bad instance
                self._pending -= 1
                await self._finalise(
                    JobOutcome(
                        job_id=spec.job_id,
                        state="failed",
                        error=f"{type(error).__name__}: {error}",
                        seed=spec.seed,
                        wait_seconds=waited_s,
                    )
                )
                return
            # Pin the placement so the solve (and any solo replay of
            # it) builds exactly the routed device.
            spec.topology = decision.qpu.topology
            spec.grid = decision.qpu.grid
            counter = self._metric("hyqsat_fleet_routed_total")
            if counter is not None:
                counter.labels(device=decision.qpu.name).inc()
            if not decision.fits:
                counter = self._metric("hyqsat_fleet_routing_fallbacks_total")
                if counter is not None:
                    counter.inc()
            if conn is not None:
                await self._send(
                    conn,
                    protocol.event(
                        spec.job_id,
                        "routed",
                        device=decision.qpu.name,
                        topology=decision.qpu.topology,
                        grid=decision.qpu.grid,
                        embedded_clauses=decision.embedded_clauses,
                        total_clauses=decision.total_clauses,
                        fits=decision.fits,
                    ),
                )
        if conn is not None:
            await self._send(conn, protocol.event(spec.job_id, "started"))
        scheduler = (
            None
            if decision is None
            else self.router.scheduler_for(decision.qpu)
        )
        outcome = await loop.run_in_executor(
            self._executor, self._run_with_cache, spec, scheduler
        )
        outcome.wait_seconds = waited_s
        self._pending -= 1
        await self._finalise(outcome)
