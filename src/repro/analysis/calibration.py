"""Per-iteration CDCL cost measurement.

The Table II end-to-end model converts iteration counts to time with a
per-iteration cost measured on *this* machine, so the HyQSAT-vs-
baseline ratio stays meaningful even though absolute times differ from
the paper's Intel E5 (see DESIGN.md).
"""

from __future__ import annotations

import time
from typing import Callable, Optional

import numpy as np

from repro.benchgen.random_ksat import random_3sat
from repro.cdcl.presets import minisat_solver
from repro.sat.cnf import CNF


def measure_iteration_cost(
    solver_factory: Callable[[CNF], object] = minisat_solver,
    num_vars: int = 100,
    num_clauses: int = 420,
    trials: int = 3,
    seed: int = 0,
) -> float:
    """Seconds per CDCL iteration, averaged over random instances."""
    rng = np.random.default_rng(seed)
    total_time = 0.0
    total_iters = 0
    for _ in range(trials):
        formula = random_3sat(num_vars, num_clauses, rng)
        solver = solver_factory(formula)
        start = time.perf_counter()
        result = solver.solve()
        total_time += time.perf_counter() - start
        total_iters += max(1, result.stats.iterations)
    return total_time / total_iters
