"""Experiment analysis: metrics, profiling, and table rendering.

- :mod:`repro.analysis.metrics` — the Table I reduction statistics
  (average / geomean / max / min) and speedup helpers.
- :mod:`repro.analysis.visits` — clause visit-frequency profiling
  (Figure 5) and conflict-proportion measures (Figure 12).
- :mod:`repro.analysis.tables` — plain-text table rendering used by
  the benchmark harness and the CLI.
- :mod:`repro.analysis.calibration` — per-iteration CDCL cost
  measurement for the modelled end-to-end times (Table II).
- :mod:`repro.analysis.trace_report` — summaries of ``--trace`` JSONL
  files (span aggregates, per-iteration drill-down).
"""

from repro.analysis.calibration import measure_iteration_cost
from repro.analysis.figures import ascii_histogram, ascii_scatter, ascii_series
from repro.analysis.metrics import (
    ReductionStats,
    reduction_stats,
    resilience_summary,
    speedup,
)
from repro.analysis.tables import format_table
from repro.analysis.trace_report import (
    format_report,
    iteration_rows,
    load_trace,
    summarize,
)
from repro.analysis.visits import conflict_proportion, visit_profile

__all__ = [
    "ReductionStats",
    "ascii_histogram",
    "ascii_scatter",
    "ascii_series",
    "conflict_proportion",
    "format_report",
    "format_table",
    "iteration_rows",
    "load_trace",
    "measure_iteration_cost",
    "reduction_stats",
    "resilience_summary",
    "speedup",
    "summarize",
    "visit_profile",
]
