"""Clause visit-frequency profiling (Figure 5) and difficulty
measures (Figure 12)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cdcl.stats import ClauseCounters


@dataclass(frozen=True)
class VisitProfile:
    """Figure 5's quintile decomposition of clause visits.

    Clauses are ranked by total visits and split into five equal
    groups; each group's share of propagation and conflict visits is
    reported (the paper: the top 1/5 of clauses take 42% of visits,
    33% propagation + 9% conflict resolving).
    """

    propagation_share: Tuple[float, ...]
    conflict_share: Tuple[float, ...]

    @property
    def total_share(self) -> Tuple[float, ...]:
        """Combined per-quintile share."""
        return tuple(
            p + c for p, c in zip(self.propagation_share, self.conflict_share)
        )


def visit_profile(counters: ClauseCounters, quantiles: int = 5) -> VisitProfile:
    """Quintile visit shares from a solved instance's clause counters."""
    if quantiles < 1:
        raise ValueError("quantiles must be >= 1")
    prop = np.asarray(counters.propagation_visits, dtype=float)
    conf = np.asarray(counters.conflict_visits, dtype=float)
    total = prop + conf
    grand_total = total.sum()
    if grand_total == 0:
        flat = tuple(0.0 for _ in range(quantiles))
        return VisitProfile(flat, flat)
    order = np.argsort(-total)
    groups = np.array_split(order, quantiles)
    prop_share = tuple(float(prop[g].sum() / grand_total) for g in groups)
    conf_share = tuple(float(conf[g].sum() / grand_total) for g in groups)
    return VisitProfile(prop_share, conf_share)


def conflict_proportion(stats) -> float:
    """Conflicts per iteration — Figure 12 (a)'s difficulty axis."""
    if stats.iterations == 0:
        return 0.0
    return stats.conflicts / stats.iterations
