"""Summarise a ``--trace`` JSONL file into a readable report.

Reads a trace written by :class:`repro.observability.Tracer` (schema
``hyqsat-trace/1``, see ``docs/TELEMETRY.md``), rebuilds the span tree
from the ``id``/``parent`` links, and aggregates it three ways:

- **per span name** — count, total/mean wall time, total modelled QPU
  time (the wall/QPU split behind the paper's Figure 11 breakdown);
- **per event name** — occurrence counts;
- **per iteration** — one row per ``iteration`` span with its phase
  timings and the anneal outcome, for drilling into a single solve.

Use from code (:func:`summarize` / :func:`iteration_rows` /
:func:`format_report`) or as a module::

    PYTHONPATH=src python -m repro.analysis.trace_report run.jsonl
"""

from __future__ import annotations

import json
import sys
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence

from repro.observability.tracer import read_trace

#: Span-name display order of the per-span table (unknown names sort
#: after these, alphabetically).
_SPAN_ORDER = (
    "solve",
    "iteration",
    "select",
    "embed",
    "compile",
    "anneal",
    "classify",
    "feedback",
)


def load_trace(path_or_lines) -> List[Dict[str, Any]]:
    """Load and schema-check a JSONL trace (thin alias of
    :func:`repro.observability.read_trace`)."""
    return read_trace(path_or_lines)


def _spans(records: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [r for r in records if r.get("type") == "span"]


def _events(records: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return [r for r in records if r.get("type") == "event"]


def summarize(records: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate a record list into a plain-dict report.

    Returns keys:

    - ``solve`` — the root span's attributes (status, iterations, ...)
      plus its wall/QPU totals; ``None`` when the trace has no ``solve``
      span (e.g. a truncated file);
    - ``spans`` — ordered ``{name: {count, wall_s, mean_wall_s,
      qpu_us}}``;
    - ``events`` — ``{name: count}``;
    - ``iterations`` — :func:`iteration_rows`.
    """
    spans = _spans(records)
    events = _events(records)

    by_name: Dict[str, Dict[str, Any]] = {}
    for span in spans:
        agg = by_name.setdefault(
            span["name"], {"count": 0, "wall_s": 0.0, "qpu_us": 0.0}
        )
        agg["count"] += 1
        agg["wall_s"] += span["wall_dur_s"]
        agg["qpu_us"] += span["qpu_dur_us"]
    ordered: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
    rest = sorted(set(by_name) - set(_SPAN_ORDER))
    for name in (*_SPAN_ORDER, *rest):
        if name in by_name:
            agg = by_name[name]
            agg["mean_wall_s"] = agg["wall_s"] / agg["count"]
            ordered[name] = agg

    event_counts: Dict[str, int] = {}
    for event in events:
        event_counts[event["name"]] = event_counts.get(event["name"], 0) + 1

    solve: Optional[Dict[str, Any]] = None
    for span in spans:
        if span["name"] == "solve":
            solve = {
                "wall_s": span["wall_dur_s"],
                "qpu_us": span["qpu_dur_us"],
                **span.get("attrs", {}),
            }
            break

    return {
        "solve": solve,
        "spans": ordered,
        "events": dict(sorted(event_counts.items())),
        "iterations": iteration_rows(records),
    }


def iteration_rows(records: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """One row per ``iteration`` span, in iteration order.

    Each row carries the iteration index, wall/QPU durations, the wall
    time of each phase child that ran (``select``/``embed``/``anneal``/
    ``classify``/``feedback``), the anneal ``outcome`` attribute when a
    QA call happened, and the per-iteration CDCL event counts.
    """
    spans = _spans(records)
    events = _events(records)
    iterations = [s for s in spans if s["name"] == "iteration"]
    iterations.sort(key=lambda s: s.get("attrs", {}).get("index", 0))

    children: Dict[Any, List[Dict[str, Any]]] = {}
    for span in spans:
        children.setdefault(span.get("parent"), []).append(span)
    events_by_span: Dict[Any, List[Dict[str, Any]]] = {}
    for event in events:
        events_by_span.setdefault(event.get("span"), []).append(event)

    rows: List[Dict[str, Any]] = []
    for iteration in iterations:
        row: Dict[str, Any] = {
            "index": iteration.get("attrs", {}).get("index"),
            "wall_s": iteration["wall_dur_s"],
            "qpu_us": iteration["qpu_dur_us"],
        }
        for child in children.get(iteration["id"], ()):
            row[child["name"] + "_s"] = child["wall_dur_s"]
            if child["name"] == "anneal":
                attrs = child.get("attrs", {})
                row["outcome"] = attrs.get("outcome")
                if "energy" in attrs:
                    row["energy"] = attrs["energy"]
        for event in events_by_span.get(iteration["id"], ()):
            key = event["name"].replace(".", "_")
            row[key] = row.get(key, 0) + 1
        rows.append(row)
    return rows


def format_report(summary: Dict[str, Any], max_iterations: int = 12) -> str:
    """Render a :func:`summarize` dict as plain text."""
    from repro.analysis.tables import format_table

    lines: List[str] = []
    solve = summary.get("solve")
    if solve is not None:
        head = " ".join(
            f"{key}={solve[key]}"
            for key in ("status", "num_vars", "num_clauses", "iterations",
                        "qa_calls", "warmup_iterations")
            if key in solve
        )
        lines.append(f"solve: {head}")
        lines.append(
            f"wall: {solve['wall_s']:.4f}s  modelled QPU: {solve['qpu_us']:.1f}us"
        )
        lines.append("")

    span_rows = [
        [
            name,
            agg["count"],
            f"{agg['wall_s'] * 1e3:.2f}",
            f"{agg['mean_wall_s'] * 1e3:.3f}",
            f"{agg['qpu_us']:.1f}",
        ]
        for name, agg in summary["spans"].items()
    ]
    if span_rows:
        lines.append(
            format_table(
                ["Span", "Count", "Wall ms", "Mean ms", "QPU us"],
                span_rows,
                title="Span aggregates",
            )
        )
    if summary["events"]:
        lines.append("")
        lines.append(
            format_table(
                ["Event", "Count"],
                [[name, count] for name, count in summary["events"].items()],
                title="Events",
            )
        )

    qa_rows = [
        row for row in summary["iterations"] if row.get("outcome") is not None
    ]
    if qa_rows:
        shown = qa_rows[:max_iterations]
        lines.append("")
        lines.append(
            format_table(
                ["Iter", "Outcome", "Energy", "Anneal ms", "QPU us"],
                [
                    [
                        row.get("index", "?"),
                        row.get("outcome", ""),
                        (
                            f"{row['energy']:.3f}"
                            if "energy" in row
                            else "-"
                        ),
                        f"{row.get('anneal_s', 0.0) * 1e3:.3f}",
                        f"{row['qpu_us']:.1f}",
                    ]
                    for row in shown
                ],
                title=f"QA iterations ({len(shown)} of {len(qa_rows)})",
            )
        )
    return "\n".join(lines)


def _load_trace_lenient(path: str) -> List[Dict[str, Any]]:
    """Like :func:`load_trace`, but tolerant of an interrupted writer.

    A torn *final* line (the writer was killed mid-record) is dropped
    with a warning instead of failing the whole report; corruption
    anywhere else still raises ``ValueError``.
    """
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle if line.strip()]
    if not lines:
        raise ValueError("trace is empty (no records written)")
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        try:
            records.append(json.loads(line))
        except ValueError:
            if lineno == len(lines):
                print(
                    "warning: dropping truncated final record "
                    "(trace writer was interrupted?)",
                    file=sys.stderr,
                )
                break
            raise ValueError(f"invalid JSON on line {lineno}")
    return read_trace([json.dumps(r) for r in records])


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.analysis.trace_report <trace.jsonl>``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1 or argv[0] in ("-h", "--help"):
        print("usage: python -m repro.analysis.trace_report <trace.jsonl>")
        return 2
    try:
        records = _load_trace_lenient(argv[0])
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if not _spans(records) and not _events(records):
        print(
            "trace has no spans or events to report "
            "(empty solve, or the trace was cut short before any span "
            "completed)"
        )
        return 0
    try:
        report = format_report(summarize(records))
    except (KeyError, TypeError) as error:
        print(
            f"error: malformed trace record (truncated write?): {error!r}",
            file=sys.stderr,
        )
        return 1
    try:
        print(report)
    except BrokenPipeError:  # report piped into head/less and cut short
        sys.stderr.close()
        return 0
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests on main()
    sys.exit(main())
