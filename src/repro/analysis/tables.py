"""Minimal plain-text table rendering for the benchmark harness."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
