"""Plain-text figure rendering for the bench harness.

The paper's figures are charts; the bench harness reproduces their
*series* and renders them as monospace histograms / scatter plots so
``pytest benchmarks/`` output is self-contained without matplotlib.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


def ascii_histogram(
    values: Sequence[float],
    bins: int = 12,
    width: int = 40,
    label: str = "",
    value_range: Optional[Tuple[float, float]] = None,
) -> str:
    """A horizontal-bar histogram.

    Each row is one bin: ``[lo, hi)  ████████  count``.
    """
    data = np.asarray(list(values), dtype=float)
    if data.size == 0:
        return f"{label}: (no data)"
    lo, hi = value_range if value_range else (float(data.min()), float(data.max()))
    if hi <= lo:
        hi = lo + 1.0
    counts, edges = np.histogram(data, bins=bins, range=(lo, hi))
    peak = max(int(counts.max()), 1)
    lines: List[str] = []
    if label:
        lines.append(label)
    for count, left, right in zip(counts, edges[:-1], edges[1:]):
        bar = "█" * max(0, round(width * count / peak))
        lines.append(f"[{left:7.2f}, {right:7.2f})  {bar:<{width}}  {count}")
    return "\n".join(lines)


def ascii_scatter(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 56,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """A character-grid scatter plot with axis ranges in the footer."""
    x = np.asarray(list(xs), dtype=float)
    y = np.asarray(list(ys), dtype=float)
    if x.size == 0 or x.size != y.size:
        return "(no data)"
    x_lo, x_hi = float(x.min()), float(x.max())
    y_lo, y_hi = float(y.min()), float(y.max())
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for xv, yv in zip(x, y):
        col = min(width - 1, int((xv - x_lo) / (x_hi - x_lo) * (width - 1)))
        row = min(height - 1, int((yv - y_lo) / (y_hi - y_lo) * (height - 1)))
        grid[height - 1 - row][col] = "o" if grid[height - 1 - row][col] == " " else "O"
    lines = ["+" + "-" * width + "+"]
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append("+" + "-" * width + "+")
    lines.append(
        f"x: {x_label} in [{x_lo:.3g}, {x_hi:.3g}]   "
        f"y: {y_label} in [{y_lo:.3g}, {y_hi:.3g}]"
    )
    return "\n".join(lines)


def ascii_series(
    points: Sequence[Tuple[float, float]],
    width: int = 48,
    label: str = "",
) -> str:
    """A labelled one-line-per-point bar series (for sweeps)."""
    if not points:
        return f"{label}: (no data)"
    peak = max(abs(v) for _, v in points) or 1.0
    lines: List[str] = []
    if label:
        lines.append(label)
    for key, value in points:
        bar = "█" * max(0, round(width * abs(value) / peak))
        lines.append(f"{key:>10}  {bar:<{width}}  {value:.3g}")
    return "\n".join(lines)
