"""Reduction, speedup, and resilience metrics.

Table I / Table II statistics plus the service-level summary of a
fault-injected solve (availability, retry overhead, budget burn) the
robustness experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np


@dataclass(frozen=True)
class ReductionStats:
    """Table I row statistics over per-problem reductions."""

    average: float
    geomean: float
    maximum: float
    minimum: float
    count: int

    def as_row(self) -> List[str]:
        """Formatted cells for table rendering."""
        return [
            f"{self.average:.2f}",
            f"{self.geomean:.2f}",
            f"{self.maximum:.2f}",
            f"{self.minimum:.2f}",
        ]


def reduction_stats(reductions: Sequence[float]) -> ReductionStats:
    """Average / geometric-mean / max / min of a reduction list.

    Reductions are ratios (baseline / treated); all must be positive.
    """
    values = np.asarray(list(reductions), dtype=float)
    if values.size == 0:
        raise ValueError("need at least one reduction value")
    if (values <= 0).any():
        raise ValueError("reductions must be positive ratios")
    return ReductionStats(
        average=float(values.mean()),
        geomean=float(np.exp(np.log(values).mean())),
        maximum=float(values.max()),
        minimum=float(values.min()),
        count=int(values.size),
    )


def speedup(baseline_seconds: float, treated_seconds: float) -> float:
    """Baseline-over-treated time ratio (>1 means treated is faster)."""
    if treated_seconds <= 0:
        raise ValueError("treated time must be positive")
    return baseline_seconds / treated_seconds


def resilience_summary(hybrid) -> Dict[str, float]:
    """Service-level summary of a (possibly fault-injected) solve.

    Takes a :class:`~repro.core.hyqsat.HybridStats` and returns the
    flat metric dict the robustness experiments tabulate:
    availability (successful calls / attempted calls), retry overhead
    (retries per successful call), fault totals per channel, and the
    modelled QA budget spent.

    When no QA call was ever attempted (e.g. a pure-CDCL run or a
    solve that finished before the first warm-up deploy) the ratio
    fields — ``availability`` and ``retries_per_call`` — are **absent**
    rather than fabricated: a run that never exercised the QA service
    has no availability, and reporting 1.0 would let an all-classic
    run masquerade as a perfectly healthy device in aggregated tables.
    """
    attempted = hybrid.qa_calls + hybrid.qa_failures
    out: Dict[str, float] = {
        "qa_calls": float(hybrid.qa_calls),
        "qa_attempted": float(attempted),
        "qa_failures": float(hybrid.qa_failures),
        "qa_retries": float(hybrid.qa_retries),
        "budget_spent_us": hybrid.qa_budget_spent_us,
        "dropped_reads": float(hybrid.qa_dropped_reads),
        "degraded": 1.0 if hybrid.degraded else 0.0,
    }
    if attempted:
        out["availability"] = hybrid.qa_calls / attempted
        out["retries_per_call"] = (
            hybrid.qa_retries / hybrid.qa_calls if hybrid.qa_calls else 0.0
        )
    for channel, count in sorted(hybrid.qa_fault_counts.items()):
        out[f"fault_{channel}"] = float(count)
    return out
