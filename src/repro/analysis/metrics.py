"""Reduction and speedup metrics (Table I / Table II statistics)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np


@dataclass(frozen=True)
class ReductionStats:
    """Table I row statistics over per-problem reductions."""

    average: float
    geomean: float
    maximum: float
    minimum: float
    count: int

    def as_row(self) -> List[str]:
        """Formatted cells for table rendering."""
        return [
            f"{self.average:.2f}",
            f"{self.geomean:.2f}",
            f"{self.maximum:.2f}",
            f"{self.minimum:.2f}",
        ]


def reduction_stats(reductions: Sequence[float]) -> ReductionStats:
    """Average / geometric-mean / max / min of a reduction list.

    Reductions are ratios (baseline / treated); all must be positive.
    """
    values = np.asarray(list(reductions), dtype=float)
    if values.size == 0:
        raise ValueError("need at least one reduction value")
    if (values <= 0).any():
        raise ValueError("reductions must be positive ratios")
    return ReductionStats(
        average=float(values.mean()),
        geomean=float(np.exp(np.log(values).mean())),
        maximum=float(values.max()),
        minimum=float(values.min()),
        count=int(values.size),
    )


def speedup(baseline_seconds: float, treated_seconds: float) -> float:
    """Baseline-over-treated time ratio (>1 means treated is faster)."""
    if treated_seconds <= 0:
        raise ValueError("treated time must be positive")
    return baseline_seconds / treated_seconds
