"""HyQSAT reproduction: a hybrid quantum-annealer + CDCL 3-SAT solver.

Reproduction of *HyQSAT: A Hybrid Approach for 3-SAT Problems by
Integrating Quantum Annealer with CDCL* (HPCA 2023).  See DESIGN.md
for the system inventory and EXPERIMENTS.md for paper-vs-measured
results.

Quickstart::

    from repro import HyQSatSolver, random_3sat
    import numpy as np

    formula = random_3sat(50, 210, np.random.default_rng(0))
    result = HyQSatSolver(formula).solve()
    print(result.status, result.iterations)

Public surface (re-exported here):

- SAT substrate: :class:`CNF`, :class:`Clause`, :class:`Lit`,
  :class:`Assignment`, DIMACS I/O, ``to_3sat``.
- Classical solvers: :func:`minisat_solver`, :func:`kissat_solver`,
  :class:`CdclSolver`.
- The hybrid solver: :class:`HyQSatSolver`, :class:`HyQSatConfig`.
- The simulated device: :class:`AnnealerDevice`, :class:`NoiseModel`,
  :class:`ChimeraGraph`.
- Benchmarks: ``BENCHMARKS``, :func:`generate_suite`,
  :func:`random_3sat`.
"""

from repro.annealer import AnnealerDevice, FaultModel, NoiseModel, QpuTimingModel
from repro.benchgen import BENCHMARKS, generate_suite, random_3sat
from repro.cdcl import (
    CdclSolver,
    DratProof,
    SolverConfig,
    SolverResult,
    check_proof,
    kissat_solver,
    minisat_solver,
)
from repro.core import (
    BreakerPolicy,
    HyQSatConfig,
    HyQSatResult,
    HyQSatSolver,
    ResilienceConfig,
    RetryPolicy,
)
from repro.embedding import HyQSatEmbedder, MinorminerLikeEmbedder, PlaceAndRouteEmbedder
from repro.resilience import QaUnavailable, ResilientDevice
from repro.ml import Band, ConfidenceBands, GaussianNaiveBayes
from repro.qubo import QuadraticObjective, adjust_coefficients, encode_formula
from repro.sat import CNF, Assignment, Clause, Lit, read_dimacs, to_3sat, write_dimacs
from repro.topology import ChimeraGraph

__version__ = "1.0.0"

__all__ = [
    "AnnealerDevice",
    "Assignment",
    "BENCHMARKS",
    "Band",
    "BreakerPolicy",
    "CNF",
    "CdclSolver",
    "ChimeraGraph",
    "Clause",
    "ConfidenceBands",
    "DratProof",
    "FaultModel",
    "GaussianNaiveBayes",
    "HyQSatConfig",
    "HyQSatEmbedder",
    "HyQSatResult",
    "HyQSatSolver",
    "Lit",
    "MinorminerLikeEmbedder",
    "NoiseModel",
    "PlaceAndRouteEmbedder",
    "QaUnavailable",
    "QpuTimingModel",
    "QuadraticObjective",
    "ResilienceConfig",
    "ResilientDevice",
    "RetryPolicy",
    "SolverConfig",
    "SolverResult",
    "adjust_coefficients",
    "check_proof",
    "encode_formula",
    "generate_suite",
    "kissat_solver",
    "minisat_solver",
    "random_3sat",
    "read_dimacs",
    "to_3sat",
    "write_dimacs",
    "__version__",
]
