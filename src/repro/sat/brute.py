"""Exhaustive reference solver.

Used throughout the test suite as ground truth for small formulas, and
by the QUBO encoding tests to check that the global minimum of the
objective function is zero exactly when the formula is satisfiable.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.sat.assignment import Assignment
from repro.sat.cnf import CNF

_MAX_BRUTE_VARS = 24


def _enumerate_assignments(num_vars: int) -> Iterator[Assignment]:
    for bits in range(1 << num_vars):
        yield Assignment(
            {var: bool((bits >> (var - 1)) & 1) for var in range(1, num_vars + 1)}
        )


def brute_force_solve(formula: CNF) -> Optional[Assignment]:
    """Return a satisfying total assignment, or None if unsatisfiable.

    Raises ``ValueError`` for formulas with more than 24 variables; this
    function exists as test ground truth, not as a solver.
    """
    if formula.num_vars > _MAX_BRUTE_VARS:
        raise ValueError(
            f"brute force limited to {_MAX_BRUTE_VARS} variables, "
            f"got {formula.num_vars}"
        )
    for assignment in _enumerate_assignments(formula.num_vars):
        if assignment.satisfies(formula):
            return assignment
    return None


def brute_force_count(formula: CNF) -> int:
    """Count the satisfying total assignments (model count)."""
    if formula.num_vars > _MAX_BRUTE_VARS:
        raise ValueError(
            f"brute force limited to {_MAX_BRUTE_VARS} variables, "
            f"got {formula.num_vars}"
        )
    return sum(
        1
        for assignment in _enumerate_assignments(formula.num_vars)
        if assignment.satisfies(formula)
    )
