"""SAT substrate: CNF data model, DIMACS I/O, reductions, reference solvers.

This package provides everything the rest of the library needs to talk
about propositional satisfiability:

- :class:`~repro.sat.cnf.Lit` / :class:`~repro.sat.cnf.Clause` /
  :class:`~repro.sat.cnf.CNF` — the core immutable data model.
- :mod:`repro.sat.dimacs` — DIMACS CNF parsing and serialisation.
- :class:`~repro.sat.assignment.Assignment` — partial/total assignments.
- :mod:`repro.sat.ksat` — k-SAT to 3-SAT reduction.
- :mod:`repro.sat.brute` — exhaustive reference solver for testing.
- :mod:`repro.sat.simplify` — unit propagation / pure-literal presolve.
"""

from repro.sat.assignment import Assignment
from repro.sat.brute import brute_force_count, brute_force_solve
from repro.sat.cnf import CNF, Clause, Lit, fingerprint
from repro.sat.dimacs import (
    from_dimacs,
    parse_dimacs,
    read_dimacs,
    to_dimacs,
    write_dimacs,
)
from repro.sat.ksat import to_3sat
from repro.sat.simplify import SimplifyResult, propagate_units, simplify
from repro.sat.stats import FormulaStats, formula_stats

__all__ = [
    "Assignment",
    "CNF",
    "FormulaStats",
    "Clause",
    "Lit",
    "SimplifyResult",
    "brute_force_count",
    "formula_stats",
    "brute_force_solve",
    "fingerprint",
    "from_dimacs",
    "parse_dimacs",
    "propagate_units",
    "read_dimacs",
    "simplify",
    "to_3sat",
    "to_dimacs",
    "write_dimacs",
]
