"""DIMACS CNF parsing and serialisation.

Supports the standard format used by SATLIB / SAT-competition files::

    c a comment
    p cnf <num_vars> <num_clauses>
    1 -2 3 0
    ...

Parsing is forgiving in the ways real SATLIB files require: clauses may
span lines, ``%``-terminated files (SATLIB uniform random instances) are
accepted, and the header clause count is checked but may be overridden
with ``strict=False``.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, List, Union

from repro.sat.cnf import CNF, Clause


class DimacsError(ValueError):
    """Raised for malformed DIMACS input."""


def parse_dimacs(text: str, strict: bool = True) -> CNF:
    """Parse DIMACS CNF ``text`` into a :class:`CNF`.

    Parameters
    ----------
    text:
        Full DIMACS document.
    strict:
        When true, the header's variable and clause counts must match
        the body (the SATLIB convention of trailing ``%`` and ``0``
        lines is still accepted).
    """
    num_vars: int = -1
    num_clauses: int = -1
    clauses: List[Clause] = []
    current: List[int] = []
    saw_header = False

    for line_no, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("%"):
            break  # SATLIB end-of-formula marker
        if line.startswith("p"):
            if saw_header:
                raise DimacsError(f"line {line_no}: duplicate problem line")
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise DimacsError(f"line {line_no}: malformed problem line {line!r}")
            try:
                num_vars, num_clauses = int(parts[2]), int(parts[3])
            except ValueError as exc:
                raise DimacsError(f"line {line_no}: non-integer header counts") from exc
            if num_vars < 0 or num_clauses < 0:
                raise DimacsError(f"line {line_no}: negative header counts")
            saw_header = True
            continue
        if not saw_header:
            raise DimacsError(f"line {line_no}: clause data before problem line")
        for token in line.split():
            try:
                lit = int(token)
            except ValueError as exc:
                raise DimacsError(f"line {line_no}: bad literal {token!r}") from exc
            if lit == 0:
                clauses.append(Clause(current))
                current = []
            else:
                if abs(lit) > num_vars:
                    if strict:
                        raise DimacsError(
                            f"line {line_no}: literal {lit} exceeds declared "
                            f"num_vars={num_vars}"
                        )
                    num_vars = abs(lit)
                current.append(lit)

    if not saw_header:
        raise DimacsError("missing problem line ('p cnf <vars> <clauses>')")
    if current:
        # A trailing clause without its 0 terminator: SATLIB files always
        # terminate clauses, so treat this as an error in strict mode.
        if strict:
            raise DimacsError("unterminated final clause (missing trailing 0)")
        clauses.append(Clause(current))
    if strict and len(clauses) != num_clauses:
        raise DimacsError(
            f"header declares {num_clauses} clauses but body has {len(clauses)}"
        )
    return CNF(clauses, num_vars=num_vars)


def to_dimacs(formula: CNF, comments: Iterable[str] = ()) -> str:
    """Serialise ``formula`` to a DIMACS CNF document."""
    out = io.StringIO()
    for comment in comments:
        for line in str(comment).splitlines() or [""]:
            out.write(f"c {line}\n")
    out.write(f"p cnf {formula.num_vars} {formula.num_clauses}\n")
    for clause in formula:
        out.write(" ".join(str(lit.value) for lit in clause))
        out.write(" 0\n")
    return out.getvalue()


def read_dimacs(path: Union[str, Path], strict: bool = True) -> CNF:
    """Read and parse a DIMACS file from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_dimacs(handle.read(), strict=strict)


def write_dimacs(
    formula: CNF, path: Union[str, Path], comments: Iterable[str] = ()
) -> None:
    """Serialise ``formula`` and write it to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dimacs(formula, comments=comments))


# Aliases matching common naming in other SAT toolkits.
from_dimacs = parse_dimacs
