"""Presolve simplification: unit propagation and pure-literal elimination.

These are the standard cheap reductions every serious SAT pipeline
applies before search.  The hybrid solver uses :func:`propagate_units`
to keep its working formula tidy, and the benchmark generators use
:func:`simplify` to report effective instance sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.sat.assignment import Assignment
from repro.sat.cnf import CNF, Clause, Lit


@dataclass(frozen=True)
class SimplifyResult:
    """Outcome of a presolve pass.

    Attributes
    ----------
    formula:
        The simplified formula (same variable numbering).  Meaningless
        when ``conflict`` is true.
    forced:
        Assignment of all variables whose values were derived.
    conflict:
        True if simplification derived the empty clause — the input is
        unsatisfiable regardless of the remaining formula.
    """

    formula: CNF
    forced: Assignment
    conflict: bool

    @property
    def decided_unsat(self) -> bool:
        """Alias for ``conflict``."""
        return self.conflict

    @property
    def decided_sat(self) -> bool:
        """True when simplification alone satisfied every clause."""
        return not self.conflict and self.formula.num_clauses == 0


def propagate_units(formula: CNF) -> SimplifyResult:
    """Repeatedly assert unit clauses and reduce the formula.

    Returns a :class:`SimplifyResult`; ``conflict`` is set when two unit
    clauses demand opposite values or a clause becomes empty.
    """
    forced = Assignment()
    clauses: List[Clause] = [c for c in formula if not c.is_tautology]

    while True:
        unit: Optional[Lit] = None
        for clause in clauses:
            if clause.is_empty:
                return SimplifyResult(CNF([], num_vars=formula.num_vars), forced, True)
            if clause.is_unit:
                unit = clause.lits[0]
                break
        if unit is None:
            break
        existing = forced.get(unit.var)
        if existing is not None and existing != unit.positive:
            return SimplifyResult(CNF([], num_vars=formula.num_vars), forced, True)
        forced.assign(unit.var, unit.positive)
        reduced: List[Clause] = []
        for clause in clauses:
            value = forced.value_of(unit)
            if unit in clause:
                continue  # satisfied
            if -unit in clause:
                narrowed = Clause([l for l in clause if l != -unit])
                if narrowed.is_empty:
                    return SimplifyResult(
                        CNF([], num_vars=formula.num_vars), forced, True
                    )
                reduced.append(narrowed)
            else:
                reduced.append(clause)
        clauses = reduced

    return SimplifyResult(CNF(clauses, num_vars=formula.num_vars), forced, False)


def eliminate_pure_literals(formula: CNF) -> SimplifyResult:
    """Assign variables that occur with only one polarity.

    Pure-literal assignment can only satisfy clauses, never falsify, so
    ``conflict`` is always False here.
    """
    forced = Assignment()
    clauses = list(formula.clauses)
    while True:
        polarity: Dict[int, Set[bool]] = {}
        for clause in clauses:
            for lit in clause:
                polarity.setdefault(lit.var, set()).add(lit.positive)
        pure = {
            var: next(iter(signs))
            for var, signs in polarity.items()
            if len(signs) == 1
        }
        if not pure:
            break
        for var, value in pure.items():
            forced.assign(var, value)
        clauses = [
            c
            for c in clauses
            if not any(lit.var in pure and lit.positive == pure[lit.var] for lit in c)
        ]
    return SimplifyResult(CNF(clauses, num_vars=formula.num_vars), forced, False)


def simplify(formula: CNF) -> SimplifyResult:
    """Full presolve: alternate unit propagation and pure-literal rounds."""
    forced = Assignment()
    current = formula
    while True:
        units = propagate_units(current)
        for var, val in units.forced.items():
            forced.assign(var, val)
        if units.conflict:
            return SimplifyResult(units.formula, forced, True)
        pures = eliminate_pure_literals(units.formula)
        for var, val in pures.forced.items():
            forced.assign(var, val)
        if pures.formula.num_clauses == units.formula.num_clauses and not len(
            pures.forced
        ):
            return SimplifyResult(pures.formula, forced, False)
        current = pures.formula
        if current.num_clauses == 0:
            return SimplifyResult(current, forced, False)
