"""Partial and total variable assignments.

:class:`Assignment` is a mapping-compatible container used across the
library: the CDCL trail exports one, the annealer backend produces one
from qubit readouts, and the reference brute-force solver returns one.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple

from repro.sat.cnf import CNF, Clause, Lit


class Assignment:
    """A (possibly partial) mapping from variables to Boolean values.

    Behaves like a ``Mapping[int, bool]``; variables are the positive
    DIMACS indices.  Instances are mutable (``assign`` / ``unassign``)
    because the hybrid solver incrementally refines them, but cheap to
    snapshot via :meth:`copy` or :meth:`frozen`.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Optional[Mapping[int, bool]] = None):
        self._values: Dict[int, bool] = {}
        if values:
            for var, val in values.items():
                self.assign(var, val)

    @classmethod
    def from_literals(cls, lits: Iterable[object]) -> "Assignment":
        """Build from satisfied literals, e.g. ``from_literals([1, -2, 3])``."""
        out = cls()
        for raw in lits:
            lit = raw if isinstance(raw, Lit) else Lit(raw)
            out.assign(lit.var, lit.positive)
        return out

    @classmethod
    def all_false(cls, num_vars: int) -> "Assignment":
        """Total assignment with every variable 0."""
        return cls({v: False for v in range(1, num_vars + 1)})

    @classmethod
    def all_true(cls, num_vars: int) -> "Assignment":
        """Total assignment with every variable 1."""
        return cls({v: True for v in range(1, num_vars + 1)})

    def assign(self, var: int, value: bool) -> None:
        """Set ``var`` to ``value`` (overwrites any previous value)."""
        if var <= 0:
            raise ValueError(f"variable index must be positive, got {var}")
        self._values[var] = bool(value)

    def unassign(self, var: int) -> None:
        """Remove ``var`` from the assignment (no-op if absent)."""
        self._values.pop(var, None)

    def value_of(self, lit: Lit) -> Optional[bool]:
        """Truth value of a literal under this assignment, or None."""
        val = self._values.get(lit.var)
        if val is None:
            return None
        return val == lit.positive

    def satisfies_clause(self, clause: Clause) -> bool:
        """True if some literal of ``clause`` is satisfied."""
        return any(self.value_of(lit) is True for lit in clause)

    def falsifies_clause(self, clause: Clause) -> bool:
        """True if *every* literal of ``clause`` is assigned false."""
        return all(self.value_of(lit) is False for lit in clause)

    def satisfies(self, formula: CNF) -> bool:
        """True if every clause of ``formula`` is satisfied."""
        return all(self.satisfies_clause(c) for c in formula)

    def is_total(self, num_vars: int) -> bool:
        """True if variables ``1..num_vars`` are all assigned."""
        return all(v in self._values for v in range(1, num_vars + 1))

    def completed(self, num_vars: int, default: bool = False) -> "Assignment":
        """A copy with unassigned variables filled in with ``default``."""
        out = self.copy()
        for var in range(1, num_vars + 1):
            if var not in out:
                out.assign(var, default)
        return out

    def copy(self) -> "Assignment":
        """Independent mutable copy."""
        clone = Assignment()
        clone._values = dict(self._values)
        return clone

    def frozen(self) -> Tuple[Tuple[int, bool], ...]:
        """Hashable snapshot (sorted ``(var, value)`` pairs)."""
        return tuple(sorted(self._values.items()))

    def as_literals(self) -> Tuple[Lit, ...]:
        """The satisfied literals, sorted by variable."""
        return tuple(
            Lit(var if val else -var) for var, val in sorted(self._values.items())
        )

    def __getitem__(self, var: int) -> bool:
        return self._values[var]

    def __setitem__(self, var: int, value: bool) -> None:
        self.assign(var, value)

    def __contains__(self, var: object) -> bool:
        return var in self._values

    def __iter__(self) -> Iterator[int]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def get(self, var: int, default: Optional[bool] = None) -> Optional[bool]:
        """Mapping-style ``get``."""
        return self._values.get(var, default)

    def keys(self):
        """Assigned variables."""
        return self._values.keys()

    def values(self):
        """Assigned values."""
        return self._values.values()

    def items(self):
        """``(var, value)`` pairs."""
        return self._values.items()

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Assignment):
            return self._values == other._values
        if isinstance(other, Mapping):
            return self._values == dict(other)
        return NotImplemented

    def __repr__(self) -> str:
        inner = ", ".join(f"{v}={int(val)}" for v, val in sorted(self._values.items()))
        return f"Assignment({{{inner}}})"
