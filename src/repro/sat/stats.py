"""Formula structure statistics.

Used by the benchmark generators' documentation tables and by the
difficulty analysis (Figure 12): clause-width histograms, the
clause/variable ratio, variable occurrence balance, and polarity
balance are the standard descriptors of SAT instance families.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.sat.cnf import CNF


@dataclass(frozen=True)
class FormulaStats:
    """Structural descriptors of one CNF formula."""

    num_vars: int
    num_clauses: int
    clause_ratio: float
    width_histogram: Tuple[Tuple[int, int], ...]
    mean_occurrences: float
    max_occurrences: int
    positive_literal_fraction: float

    @property
    def is_3sat(self) -> bool:
        """True when no clause is wider than 3."""
        return all(width <= 3 for width, _ in self.width_histogram)


def formula_stats(formula: CNF) -> FormulaStats:
    """Compute :class:`FormulaStats` for ``formula``."""
    widths = Counter(len(c) for c in formula)
    occurrences: Counter = Counter()
    positives = 0
    total_lits = 0
    for clause in formula:
        for lit in clause:
            occurrences[lit.var] += 1
            positives += lit.positive
            total_lits += 1
    num_occ = len(occurrences)
    return FormulaStats(
        num_vars=formula.num_vars,
        num_clauses=formula.num_clauses,
        clause_ratio=formula.clause_ratio,
        width_histogram=tuple(sorted(widths.items())),
        mean_occurrences=(sum(occurrences.values()) / num_occ) if num_occ else 0.0,
        max_occurrences=max(occurrences.values(), default=0),
        positive_literal_fraction=(positives / total_lits) if total_lits else 0.0,
    )
