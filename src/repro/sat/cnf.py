"""Core CNF data model: literals, clauses, and formulas.

The user-facing representation follows the DIMACS convention: variables
are positive integers ``1..n`` and a literal is a signed integer, with
``-v`` denoting the negation of variable ``v``.  :class:`Lit` is a thin
immutable wrapper around that convention; the CDCL engine re-encodes
literals into dense non-negative indices internally (see
:mod:`repro.cdcl.solver`), but every public API speaks :class:`Lit`,
:class:`Clause`, and :class:`CNF`.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple


class Lit:
    """A propositional literal: a variable or its negation.

    Parameters
    ----------
    value:
        Non-zero signed integer in DIMACS convention.  ``Lit(3)`` is the
        positive literal of variable 3, ``Lit(-3)`` its negation.
    """

    __slots__ = ("_value",)

    def __init__(self, value: int):
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError(f"literal value must be an int, got {value!r}")
        if value == 0:
            raise ValueError("literal value must be non-zero (0 terminates DIMACS clauses)")
        self._value = value

    @property
    def value(self) -> int:
        """The signed DIMACS integer of this literal."""
        return self._value

    @property
    def var(self) -> int:
        """The (positive) variable index of this literal."""
        return abs(self._value)

    @property
    def positive(self) -> bool:
        """True if this literal is the un-negated variable."""
        return self._value > 0

    @property
    def negative(self) -> bool:
        """True if this literal is a negated variable."""
        return self._value < 0

    def __neg__(self) -> "Lit":
        return Lit(-self._value)

    def __invert__(self) -> "Lit":
        return Lit(-self._value)

    def satisfied_by(self, value: bool) -> bool:
        """Whether assigning ``value`` to this literal's variable satisfies it."""
        return value == self.positive

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Lit):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "Lit") -> bool:
        return (self.var, not self.positive) < (other.var, not other.positive)

    def __hash__(self) -> int:
        return hash(self._value)

    def __int__(self) -> int:
        return self._value

    def __repr__(self) -> str:
        return f"Lit({self._value})"

    def __str__(self) -> str:
        return str(self._value)


def _as_lit(lit: object) -> Lit:
    """Coerce an ``int`` or :class:`Lit` into a :class:`Lit`."""
    if isinstance(lit, Lit):
        return lit
    if isinstance(lit, int) and not isinstance(lit, bool):
        return Lit(lit)
    raise TypeError(f"expected Lit or int, got {lit!r}")


class Clause:
    """An immutable disjunction of literals.

    Duplicate literals are removed and the literal order is normalised
    (sorted by variable, positive before negative), so two clauses with
    the same literal set compare equal and hash identically.

    A clause containing both a literal and its negation is a *tautology*;
    it is representable (``Clause.is_tautology``) so parsers can detect
    and drop it, but most pipelines remove tautologies up front.
    """

    __slots__ = ("_lits",)

    def __init__(self, lits: Iterable[object]):
        seen: Dict[int, Lit] = {}
        for raw in lits:
            lit = _as_lit(raw)
            seen.setdefault(lit.value, lit)
        self._lits: Tuple[Lit, ...] = tuple(sorted(seen.values()))

    @property
    def lits(self) -> Tuple[Lit, ...]:
        """The normalised literal tuple."""
        return self._lits

    @property
    def variables(self) -> FrozenSet[int]:
        """The set of variable indices mentioned by this clause."""
        return frozenset(lit.var for lit in self._lits)

    @property
    def is_empty(self) -> bool:
        """True for the empty (unsatisfiable) clause."""
        return not self._lits

    @property
    def is_unit(self) -> bool:
        """True if the clause has exactly one literal."""
        return len(self._lits) == 1

    @property
    def is_tautology(self) -> bool:
        """True if the clause contains a literal and its negation."""
        values = {lit.value for lit in self._lits}
        return any(-v in values for v in values)

    def satisfied_by(self, assignment: "Mapping[int, bool]") -> bool:
        """Whether a total assignment (``var -> bool``) satisfies this clause."""
        return any(
            lit.var in assignment and lit.satisfied_by(assignment[lit.var])
            for lit in self._lits
        )

    def __len__(self) -> int:
        return len(self._lits)

    def __iter__(self) -> Iterator[Lit]:
        return iter(self._lits)

    def __contains__(self, lit: object) -> bool:
        try:
            return _as_lit(lit) in self._lits
        except TypeError:
            return False

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Clause):
            return self._lits == other._lits
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._lits)

    def __repr__(self) -> str:
        return f"Clause([{', '.join(str(l) for l in self._lits)}])"

    def __str__(self) -> str:
        if not self._lits:
            return "⊥"
        return " ∨ ".join(
            (f"x{lit.var}" if lit.positive else f"¬x{lit.var}") for lit in self._lits
        )


# Mapping import placed late to avoid polluting module namespace at the top.
from typing import Mapping  # noqa: E402


class CNF:
    """A propositional formula in conjunctive normal form.

    Parameters
    ----------
    clauses:
        Iterable of :class:`Clause` (or iterables of literals, which are
        coerced).
    num_vars:
        Optional explicit variable count.  Defaults to the largest
        variable index mentioned; an explicit value may only *extend*
        the range (it is an error to claim fewer variables than appear).
    """

    __slots__ = ("_clauses", "_num_vars")

    def __init__(self, clauses: Iterable[object] = (), num_vars: Optional[int] = None):
        coerced: List[Clause] = []
        for clause in clauses:
            if isinstance(clause, Clause):
                coerced.append(clause)
            else:
                coerced.append(Clause(clause))
        self._clauses: Tuple[Clause, ...] = tuple(coerced)
        max_var = max((lit.var for c in self._clauses for lit in c), default=0)
        if num_vars is None:
            num_vars = max_var
        elif num_vars < max_var:
            raise ValueError(
                f"num_vars={num_vars} but formula mentions variable {max_var}"
            )
        self._num_vars = num_vars

    @property
    def clauses(self) -> Tuple[Clause, ...]:
        """The clause tuple (order-preserving)."""
        return self._clauses

    @property
    def num_vars(self) -> int:
        """Number of variables (``1..num_vars``)."""
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        """Number of clauses."""
        return len(self._clauses)

    @property
    def variables(self) -> FrozenSet[int]:
        """Variables that actually occur in some clause."""
        return frozenset(
            itertools.chain.from_iterable(c.variables for c in self._clauses)
        )

    @property
    def max_clause_size(self) -> int:
        """Size of the widest clause (0 for an empty formula)."""
        return max((len(c) for c in self._clauses), default=0)

    @property
    def is_3sat(self) -> bool:
        """True if every clause has at most three literals."""
        return self.max_clause_size <= 3

    @property
    def clause_ratio(self) -> float:
        """Clause-to-variable ratio m/n (``inf`` when n == 0)."""
        if self._num_vars == 0:
            return float("inf") if self._clauses else 0.0
        return self.num_clauses / self._num_vars

    def satisfied_by(self, assignment: Mapping[int, bool]) -> bool:
        """Whether an assignment satisfies every clause."""
        return all(c.satisfied_by(assignment) for c in self._clauses)

    def unsatisfied_clauses(self, assignment: Mapping[int, bool]) -> List[Clause]:
        """Clauses not satisfied by ``assignment`` (partial assignments allowed)."""
        return [c for c in self._clauses if not c.satisfied_by(assignment)]

    def with_clauses(self, extra: Iterable[object]) -> "CNF":
        """A new formula with ``extra`` clauses appended."""
        return CNF(list(self._clauses) + list(extra), num_vars=None)

    def restrict(self, assignment: Mapping[int, bool]) -> "CNF":
        """Apply a partial assignment, dropping satisfied clauses and
        removing falsified literals from the rest.

        The variable numbering is preserved (no renaming), so results
        remain comparable with the original formula.
        """
        reduced: List[Clause] = []
        for clause in self._clauses:
            if clause.satisfied_by(assignment):
                continue
            remaining = [
                lit for lit in clause if lit.var not in assignment
            ]
            reduced.append(Clause(remaining))
        return CNF(reduced, num_vars=self._num_vars)

    def clause_index(self) -> Dict[int, List[int]]:
        """Map each variable to the list of clause indices mentioning it."""
        index: Dict[int, List[int]] = {}
        for i, clause in enumerate(self._clauses):
            for var in clause.variables:
                index.setdefault(var, []).append(i)
        return index

    def __len__(self) -> int:
        return len(self._clauses)

    def __iter__(self) -> Iterator[Clause]:
        return iter(self._clauses)

    def __getitem__(self, i: int) -> Clause:
        return self._clauses[i]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CNF):
            return (
                self._clauses == other._clauses and self._num_vars == other._num_vars
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._clauses, self._num_vars))

    def __repr__(self) -> str:
        return f"CNF(num_vars={self._num_vars}, num_clauses={self.num_clauses})"

    def __str__(self) -> str:
        if not self._clauses:
            return "⊤"
        return " ∧ ".join(f"({c})" for c in self._clauses)


def clause(*lits: object) -> Clause:
    """Convenience constructor: ``clause(1, -2, 3)``."""
    return Clause(lits)


def fingerprint(formula: CNF) -> str:
    """Canonical content hash of a formula (hex SHA-256 digest).

    The fingerprint is computed over a *canonical* serialisation:
    every clause as its sorted literal tuple (:class:`Clause` already
    normalises literal order and drops duplicate literals), the clause
    list sorted lexicographically, plus ``num_vars``.  Two formulas
    therefore fingerprint identically iff they have the same clause
    *multiset* and variable range — clause order and per-clause literal
    order do not matter, but variable identity does (no renaming
    canonicalisation is attempted, so the hash is stable under
    reordering while x1 and x2 remain distinguishable).

    Used by the service layer's :class:`~repro.service.store.
    ResultStore` to deduplicate identical instances, and useful
    standalone as a stable cache/identity key for any CNF.  Note that
    CDCL search *is* sensitive to clause order, so two formulas with
    equal fingerprints may produce different models/statistics when
    solved separately; deduplication trades that for solving each
    distinct instance once.
    """
    import hashlib

    digest = hashlib.sha256()
    digest.update(f"p cnf {formula.num_vars} {formula.num_clauses}\n".encode())
    rows = sorted(tuple(lit.value for lit in c) for c in formula.clauses)
    for row in rows:
        digest.update(" ".join(str(v) for v in row).encode())
        digest.update(b"\n")
    return digest.hexdigest()
