"""k-SAT to 3-SAT reduction (Section VII-B of the paper).

HyQSAT targets 3-SAT; general CNF inputs are first converted with the
standard Tseitin-style clause splitting: a clause
``l1 ∨ l2 ∨ ... ∨ lk`` with k > 3 becomes::

    (l1 ∨ l2 ∨ y1) ∧ (¬y1 ∨ l3 ∨ y2) ∧ ... ∧ (¬y_{k-3} ∨ l_{k-1} ∨ lk)

introducing ``k - 3`` fresh auxiliary variables.  The reduction is
equisatisfiable and any model of the 3-SAT formula restricts to a model
of the original (and vice versa — the auxiliary values are forced by
the chain).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.sat.assignment import Assignment
from repro.sat.cnf import CNF, Clause, Lit


@dataclass(frozen=True)
class KSatReduction:
    """Result of a k-SAT → 3-SAT reduction.

    Attributes
    ----------
    formula:
        The 3-SAT formula over variables ``1..formula.num_vars``.
    original_num_vars:
        Variables ``1..original_num_vars`` are shared with the input;
        higher indices are fresh auxiliaries.
    aux_of_clause:
        For each original clause index, the auxiliary variables the
        splitting introduced for it (empty for clauses of width <= 3).
    """

    formula: CNF
    original_num_vars: int
    aux_of_clause: Tuple[Tuple[int, ...], ...] = field(default=())

    @property
    def num_aux_vars(self) -> int:
        """Count of fresh auxiliary variables introduced."""
        return self.formula.num_vars - self.original_num_vars

    def restrict_model(self, model: Assignment) -> Assignment:
        """Project a model of the 3-SAT formula onto the original variables."""
        return Assignment(
            {v: model[v] for v in range(1, self.original_num_vars + 1) if v in model}
        )


def to_3sat(formula: CNF) -> KSatReduction:
    """Reduce an arbitrary CNF formula to an equisatisfiable 3-SAT formula.

    Clauses of width <= 3 are kept verbatim; wider clauses are split.
    Variable numbering of the input is preserved.
    """
    next_var = formula.num_vars + 1
    out_clauses: List[Clause] = []
    aux_lists: List[Tuple[int, ...]] = []

    for clause in formula:
        lits = list(clause.lits)
        if len(lits) <= 3:
            out_clauses.append(clause)
            aux_lists.append(())
            continue
        aux_here: List[int] = []
        # First link: (l1 ∨ l2 ∨ y1)
        first_aux = next_var
        next_var += 1
        aux_here.append(first_aux)
        out_clauses.append(Clause([lits[0], lits[1], Lit(first_aux)]))
        prev_aux = first_aux
        # Middle links: (¬y_{i-1} ∨ l_{i+1} ∨ y_i)
        for lit in lits[2:-2]:
            aux = next_var
            next_var += 1
            aux_here.append(aux)
            out_clauses.append(Clause([Lit(-prev_aux), lit, Lit(aux)]))
            prev_aux = aux
        # Final link: (¬y_{k-3} ∨ l_{k-1} ∨ l_k)
        out_clauses.append(Clause([Lit(-prev_aux), lits[-2], lits[-1]]))
        aux_lists.append(tuple(aux_here))

    reduced = CNF(out_clauses, num_vars=next_var - 1)
    return KSatReduction(
        formula=reduced,
        original_num_vars=formula.num_vars,
        aux_of_clause=tuple(aux_lists),
    )
