"""The HyQSAT hybrid solver (Sections III–V).

HyQSAT drives a classical CDCL search whose first ``ceil(sqrt(K))``
iterations — the warm-up stage, where CDCL's learned heuristics are
still cold — are accelerated by the quantum annealer.  Each warm-up
iteration the frontend deploys the hardest (highest conflict-activity)
clauses to the device, the backend interprets the returned energy, and
one of four feedback strategies steers the search:

1. *Accept solution* — every outstanding clause was embedded and the
   device reports zero energy: verify and finish.
2. *Keep assignment* — near-satisfiable: adopt the device's variable
   values as saved phases so decisions walk towards the QA solution.
3. *No feedback* — uncertain energy: the call contributed nothing.
4. *Rush conflict* — near-unsatisfiable: boost the embedded variables'
   decision priority (and queue a few as immediate decisions) so the
   inevitable conflict is found and learned from quickly.

After the warm-up the remaining search is plain CDCL with everything
it learned.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Dict, List, Optional, Tuple

from repro.annealer.device import AnnealerDevice
from repro.annealer.faults import DeviceFault, fault_channel
from repro.cdcl.engine import create_solver
from repro.cdcl.solver import CdclSolver, SolverConfig, SolverResult, SolverStatus
from repro.core.backend import Backend, BackendDecision, Strategy
from repro.core.clause_queue import ClauseQueueGenerator
from repro.core.config import HyQSatConfig
from repro.core.frontend import Frontend
from repro.core.timing import TimeBreakdown
from repro.observability import DISABLED, declare_solver_metrics
from repro.resilience.device import QaUnavailable
from repro.sat.assignment import Assignment
from repro.sat.cnf import CNF, Lit, fingerprint


def estimate_iterations(num_vars: int, num_clauses: int) -> int:
    """Empirical estimate of the classic-CDCL iteration count K.

    The paper sizes the warm-up stage as sqrt(K) with K "estimated
    based on the numbers of variables and clauses".  This calibration
    follows the usual random-3-SAT difficulty picture: iteration count
    scales with the clause count and blows up as the clause/variable
    ratio approaches the ~4.27 phase transition.
    """
    if num_vars <= 0 or num_clauses <= 0:
        return 1
    ratio = num_clauses / num_vars
    hardness = 1.0 + max(0.0, ratio - 2.0) ** 2
    scale = 1.0 + num_vars / 100.0
    return max(1, int(num_clauses * hardness * scale))


@dataclass
class HybridStats:
    """Counters of the hybrid layer (on top of the CDCL stats).

    ``qa_calls`` counts calls that returned samples; calls lost to
    device faults land in ``qa_failures`` instead (and, when the call
    was refused outright by the resilience layer, also in
    ``qa_unavailable``), so the ``qa_calls == sum(strategy_counts) ==
    len(energies)`` invariants keep holding under fault injection.
    ``degraded`` flips when a persistent failure (open breaker, spent
    budget) switched the rest of the run to pure CDCL.
    """

    warmup_iterations: int = 0
    qa_calls: int = 0
    qpu_time_us: float = 0.0
    frontend_seconds: float = 0.0
    backend_seconds: float = 0.0
    embedded_clause_total: int = 0
    frontend_cache_hits: int = 0
    frontend_cache_misses: int = 0
    qa_retries: int = 0
    qa_failures: int = 0
    qa_unavailable: int = 0
    qa_dropped_reads: int = 0
    qa_budget_spent_us: float = 0.0
    #: Wall-clock seconds spent inside the CDCL search of this solve.
    cdcl_seconds: float = 0.0
    #: CDCL propagation / conflict throughput of this solve (wall
    #: clock; 0.0 when the solve was too fast to time).
    cdcl_propagations_per_s: float = 0.0
    cdcl_conflicts_per_s: float = 0.0
    qa_fault_counts: Dict[str, int] = field(default_factory=dict)
    breaker_state: str = "closed"
    breaker_transitions: int = 0
    degraded: bool = False
    degraded_reason: Optional[str] = None
    strategy_counts: Dict[Strategy, int] = field(
        default_factory=lambda: {s: 0 for s in Strategy}
    )
    energies: List[float] = field(default_factory=list)

    def as_dict(self) -> dict:
        """JSON-able view (``strategy_counts`` keyed by strategy name);
        the inverse of :meth:`from_dict`, used by checkpoints."""
        out = {}
        for spec in dataclass_fields(self):
            value = getattr(self, spec.name)
            if spec.name == "strategy_counts":
                value = {s.name: count for s, count in value.items()}
            elif spec.name == "qa_fault_counts":
                value = dict(value)
            elif spec.name == "energies":
                value = list(value)
            out[spec.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "HybridStats":
        """Rebuild stats serialised by :meth:`as_dict`."""
        kwargs = dict(data)
        kwargs["strategy_counts"] = {
            Strategy[name]: count
            for name, count in data["strategy_counts"].items()
        }
        return cls(**kwargs)

    @property
    def avg_embedded_clauses(self) -> float:
        """Mean clauses embedded per QA call."""
        if self.qa_calls == 0:
            return 0.0
        return self.embedded_clause_total / self.qa_calls

    @property
    def frontend_cache_hit_rate(self) -> float:
        """Fraction of frontend prepares served from the compilation
        cache (0.0 when the cache never fielded a lookup)."""
        lookups = self.frontend_cache_hits + self.frontend_cache_misses
        if lookups == 0:
            return 0.0
        return self.frontend_cache_hits / lookups

    @property
    def qa_availability(self) -> float:
        """Share of attempted QA calls that returned samples (1.0 when
        no call was ever attempted)."""
        attempted = self.qa_calls + self.qa_failures
        if attempted == 0:
            return 1.0
        return self.qa_calls / attempted


@dataclass(frozen=True)
class HyQSatResult:
    """Outcome of a hybrid solve."""

    status: SolverStatus
    model: Optional[Assignment]
    stats: "SolverStats"
    hybrid: HybridStats

    @property
    def is_sat(self) -> bool:
        """True when a model was found."""
        return self.status is SolverStatus.SAT

    @property
    def is_unsat(self) -> bool:
        """True when the formula was refuted."""
        return self.status is SolverStatus.UNSAT

    @property
    def iterations(self) -> int:
        """Total search iterations (the Table I metric)."""
        return self.stats.iterations

    def time_breakdown(
        self,
        cdcl_iteration_seconds: float,
        frontend_us_per_call: Optional[float] = None,
        backend_us_per_call: Optional[float] = None,
    ) -> TimeBreakdown:
        """Modelled end-to-end time given a measured per-iteration CDCL
        cost.  Frontend/backend are priced per QA call from the paper's
        constants by default (see :mod:`repro.core.timing` for why the
        measured pure-Python times are not used here).
        """
        from repro.core.timing import (
            PAPER_BACKEND_US_PER_CALL,
            PAPER_FRONTEND_US_PER_CALL,
        )

        frontend_us = (
            PAPER_FRONTEND_US_PER_CALL
            if frontend_us_per_call is None
            else frontend_us_per_call
        )
        backend_us = (
            PAPER_BACKEND_US_PER_CALL
            if backend_us_per_call is None
            else backend_us_per_call
        )
        calls = self.hybrid.qa_calls
        return TimeBreakdown(
            frontend_s=calls * frontend_us * 1e-6,
            qpu_s=self.hybrid.qpu_time_us * 1e-6,
            backend_s=calls * backend_us * 1e-6,
            cdcl_s=self.stats.iterations * cdcl_iteration_seconds,
        )


from repro.cdcl.stats import SolverStats  # noqa: E402  (dataclass forward ref)


class _HybridHook:
    """The CDCL iteration hook that injects QA guidance."""

    def __init__(self, owner: "HyQSatSolver"):
        self._owner = owner

    def on_iteration(self, solver: CdclSolver) -> Optional[Assignment]:
        owner = self._owner
        config = owner.config
        owner._maybe_checkpoint(solver)
        if owner._qa_disabled:
            return None  # degraded to pure CDCL; stay out of the way
        if solver.stats.iterations > owner.hybrid_stats.warmup_iterations:
            return None
        if (solver.stats.iterations - 1) % config.qa_period != 0:
            return None
        return owner._qa_step(solver)


class HyQSatSolver:
    """Hybrid QA + CDCL solver for a 3-SAT formula.

    Parameters
    ----------
    formula:
        The CNF to solve (width <= 3; reduce wider inputs with
        :func:`repro.sat.to_3sat` first).
    device:
        The annealer (defaults to a noiseless C16 simulator).
    config:
        Hybrid-layer configuration.
    solver_config:
        Configuration of the underlying CDCL engine.
    """

    def __init__(
        self,
        formula: CNF,
        device: Optional[AnnealerDevice] = None,
        config: Optional[HyQSatConfig] = None,
        solver_config: Optional[SolverConfig] = None,
        observability=None,
    ):
        if not formula.is_3sat:
            raise ValueError(
                "HyQSAT requires a 3-SAT formula; use repro.sat.to_3sat or "
                "HyQSatSolver.from_ksat"
            )
        self.formula = formula
        self._ksat_reduction = None
        self.config = config or HyQSatConfig()
        if device is None:
            from repro.annealer.sampler import SamplerConfig as _SamplerConfig

            device = AnnealerDevice(
                sampler_config=_SamplerConfig(batch_reads=self.config.batch_reads)
            )
        self.device = device
        self.solver_config = solver_config or SolverConfig()
        #: Tracing/metrics bundle shared with the frontend, the device,
        #: and the CDCL engine so every layer's spans nest under one
        #: ``solve`` root (see docs/TELEMETRY.md).
        self.observability = observability or DISABLED
        self.hybrid_stats = HybridStats()
        self._conflicts_at_enqueue = -1
        # Flipped by a persistent QA failure (open breaker / spent
        # budget): the rest of the run is pure CDCL, keeping every
        # learned clause.
        self._qa_disabled = False
        # Checkpoint bookkeeping: conflict count at the last snapshot,
        # and whether the current solve resumed from one (resumed runs
        # keep the restored resilience counters — the fresh device has
        # made no calls).
        self._conflicts_at_checkpoint = 0
        self._resumed_from_checkpoint = False
        # Last deployed queue + trail snapshot, reused while no new
        # conflict has been learned (see HyQSatConfig.reuse_queue_between_conflicts).
        self._last_queue: Optional[List[int]] = None
        self._last_snapshot: Optional[Assignment] = None
        self._conflicts_at_queue = -1
        # Warm CDCL instance kept across solve() calls when
        # config.warm_start is on (learned-clause retention).
        self._cdcl = None
        # Clauses to seed a *fresh* engine with through the incremental
        # API (cache warm start); never re-applied to a reused warm
        # engine or a checkpoint-resumed search.
        self._preseed: Optional[List[List[int]]] = None
        #: The CDCL engine of the most recent :meth:`solve` call —
        #: the cache layer harvests learned clauses from it.
        self.last_engine = None

        self._frontend = Frontend(
            formula,
            self.device.hardware,
            adjust=self.config.adjust_coefficients,
            num_reads=self.config.num_reads,
            cache_size=self.config.frontend_cache_size,
            chain_strength=getattr(self.device, "chain_strength", None),
            observability=self.observability,
        )
        if self.observability.enabled and hasattr(
            self.device, "set_observability"
        ):
            self.device.set_observability(self.observability)
        self._backend = Backend(
            bands=self.config.bands,
            enable_strategy_1=self.config.enable_strategy_1,
            enable_strategy_2=self.config.enable_strategy_2,
            enable_strategy_4=self.config.enable_strategy_4,
        )
        self._queue_gen = ClauseQueueGenerator(
            formula, top_k=self.config.top_k, seed=self.config.seed
        )
        if self.config.max_queue_clauses is not None:
            self._capacity = self.config.max_queue_clauses
        else:
            # Each embedded clause occupies roughly one new vertical
            # line and two horizontal segments; allow headroom and let
            # the embedder decide what actually fits.
            self._capacity = max(8, 3 * self.device.hardware.num_vertical_lines)

    @classmethod
    def from_ksat(cls, formula: CNF, **kwargs) -> "HyQSatSolver":
        """Build a solver for an arbitrary-width CNF (Section VII-B).

        The input is reduced to 3-SAT with the standard clause
        splitting; models returned by :meth:`solve` are projected back
        onto the original variables.
        """
        from repro.sat.ksat import to_3sat

        reduction = to_3sat(formula)
        solver = cls(reduction.formula, **kwargs)
        solver._ksat_reduction = reduction
        return solver

    def preseed_clauses(self, clauses: List[List[int]]) -> None:
        """Seed the next fresh solve with extra clauses (signed DIMACS
        literal lists) via the incremental ``add_clause`` API.

        Intended for the persistent cache's learned-clause bank: the
        caller guarantees every clause is implied by the formula (e.g.
        learned from a clause-subset instance), so seeding changes the
        search trajectory but never the answer.  Ignored on warm
        ``solve`` re-entries and checkpoint resumes, which already
        carry their own learned state.
        """
        self._preseed = [list(lits) for lits in clauses] or None

    def set_observability(self, observability) -> None:
        """Attach (or replace) the tracing/metrics bundle after
        construction, propagating it to the frontend and the device."""
        self.observability = observability or DISABLED
        self._frontend.observability = self.observability
        if self.observability.metrics is not None:
            declare_solver_metrics(self.observability.metrics)
        if hasattr(self.device, "set_observability"):
            self.device.set_observability(self.observability)

    def solve(self) -> HyQSatResult:
        """Run the hybrid search to SAT/UNSAT (or a budget limit)."""
        if self.config.warmup_iterations is not None:
            warmup = self.config.warmup_iterations
        else:
            estimate = estimate_iterations(
                self.formula.num_vars, self.formula.num_clauses
            )
            warmup = math.ceil(math.sqrt(estimate))
        self.hybrid_stats = HybridStats(warmup_iterations=warmup)
        self._frontend.reset_cache()
        self._last_queue = None
        self._last_snapshot = None
        self._conflicts_at_queue = -1
        self._qa_disabled = False
        self._conflicts_at_checkpoint = 0
        self._resumed_from_checkpoint = False
        resume_state = self._load_resume_state()
        if resume_state is not None:
            self.hybrid_stats = HybridStats.from_dict(resume_state["hybrid"])
            warmup = self.hybrid_stats.warmup_iterations
            self._qa_disabled = resume_state["qa_disabled"]
            self._conflicts_at_checkpoint = resume_state["conflicts"]
            self._resumed_from_checkpoint = True

        obs = self.observability
        if obs.metrics is not None:
            declare_solver_metrics(obs.metrics)
            obs.metrics.gauge("hyqsat_warmup_iterations").set(warmup)
        tracer = obs.tracer
        if tracer.enabled:
            tracer.set_qpu_clock(self._qpu_now_us)

        fresh_engine = False
        if self.config.warm_start and self._cdcl is not None:
            # Warm re-solve: keep the learned clauses, activities, and
            # saved phases accumulated by previous calls.
            solver = self._cdcl
        else:
            solver = create_solver(
                self.formula,
                engine=self.config.engine,
                config=self.solver_config,
                observability=obs if obs.enabled else None,
            )
            fresh_engine = True
        self._cdcl = solver if self.config.warm_start else None
        if resume_state is not None:
            try:
                solver.restore_search_state(resume_state["search"])
            except (KeyError, ValueError, RuntimeError):
                # Unusable snapshot (engine fell back, schema drift,
                # heuristic mismatch): start from scratch — same
                # answer, more work.  The solver may have been partly
                # mutated by the failed restore, so rebuild it.
                resume_state = None
                self.hybrid_stats = HybridStats(warmup_iterations=warmup)
                self._qa_disabled = False
                self._conflicts_at_checkpoint = 0
                self._resumed_from_checkpoint = False
                solver = create_solver(
                    self.formula,
                    engine=self.config.engine,
                    config=self.solver_config,
                    observability=obs if obs.enabled else None,
                )
                self._cdcl = solver if self.config.warm_start else None
                fresh_engine = True
        if fresh_engine and resume_state is None and self._preseed:
            for lits in self._preseed:
                solver.add_clause(lits)
        self.last_engine = solver
        props_before = solver.stats.propagations
        conflicts_before = solver.stats.conflicts
        with tracer.span(
            "solve",
            num_vars=self.formula.num_vars,
            num_clauses=self.formula.num_clauses,
            warmup_iterations=warmup,
        ) as span:
            cdcl_start = time.perf_counter()
            result = solver.solve(hook=_HybridHook(self))
            cdcl_seconds = time.perf_counter() - cdcl_start
            span.set(
                status=result.status.value,
                iterations=result.stats.iterations,
                qa_calls=self.hybrid_stats.qa_calls,
            )
        self.hybrid_stats.cdcl_seconds = cdcl_seconds
        if cdcl_seconds > 0.0:
            self.hybrid_stats.cdcl_propagations_per_s = (
                result.stats.propagations - props_before
            ) / cdcl_seconds
            self.hybrid_stats.cdcl_conflicts_per_s = (
                result.stats.conflicts - conflicts_before
            ) / cdcl_seconds
        if self._resumed_from_checkpoint:
            # The restored stats already hold the pre-crash cache
            # counters; add only this run's (post-warmup: zero) lookups.
            self.hybrid_stats.frontend_cache_hits += self._frontend.cache_hits
            self.hybrid_stats.frontend_cache_misses += (
                self._frontend.cache_misses
            )
        else:
            self.hybrid_stats.frontend_cache_hits = self._frontend.cache_hits
            self.hybrid_stats.frontend_cache_misses = (
                self._frontend.cache_misses
            )
        self._sync_resilience_stats()
        self._publish_metrics(result)
        if (
            self.config.checkpoint_path is not None
            and result.status is not SolverStatus.UNKNOWN
        ):
            from repro.service.checkpoint import discard_checkpoint

            discard_checkpoint(self.config.checkpoint_path)
        model = result.model
        if model is not None and self._ksat_reduction is not None:
            model = self._ksat_reduction.restrict_model(model)
        return HyQSatResult(
            status=result.status,
            model=model,
            stats=result.stats,
            hybrid=self.hybrid_stats,
        )

    # ------------------------------------------------------------------

    def _qpu_now_us(self) -> float:
        """The modelled QPU clock (µs): budget spend on a resilient
        device, cumulative modelled device time on a bare one."""
        stats = getattr(self.device, "stats", None)
        if stats is not None and hasattr(stats, "budget_spent_us"):
            return stats.budget_spent_us
        return getattr(self.device, "total_modelled_us", 0.0)

    def _publish_metrics(self, result: SolverResult) -> None:
        """Fold the end-of-solve aggregates into the metrics registry
        (per-call metrics were already recorded as they happened)."""
        metrics = self.observability.metrics
        if metrics is None:
            return
        cdcl = result.stats
        metrics.counter("hyqsat_cdcl_iterations_total").inc(cdcl.iterations)
        metrics.counter("hyqsat_cdcl_conflicts_total").inc(cdcl.conflicts)
        metrics.counter("hyqsat_cdcl_propagations_total").inc(cdcl.propagations)
        metrics.counter("hyqsat_cdcl_decisions_total").inc(cdcl.decisions)
        metrics.counter("hyqsat_cdcl_restarts_total").inc(cdcl.restarts)
        metrics.counter("hyqsat_cdcl_learned_clauses_total").inc(
            cdcl.learned_clauses
        )
        metrics.gauge("hyqsat_cdcl_propagations_per_s").set(
            self.hybrid_stats.cdcl_propagations_per_s
        )
        metrics.gauge("hyqsat_cdcl_conflicts_per_s").set(
            self.hybrid_stats.cdcl_conflicts_per_s
        )
        metrics.gauge("hyqsat_degraded").set(
            1.0 if self.hybrid_stats.degraded else 0.0
        )

    def _sync_resilience_stats(self) -> None:
        """Fold the resilience layer's counters into the hybrid stats
        (no-op for a bare device)."""
        if self._resumed_from_checkpoint:
            # Post-warmup resume: the fresh device made no calls; the
            # restored counters are the run's true totals.
            return
        stats = getattr(self.device, "stats", None)
        if stats is None or not hasattr(stats, "retry_trace"):
            return
        hybrid = self.hybrid_stats
        hybrid.qa_retries = stats.retries
        hybrid.qa_budget_spent_us = stats.budget_spent_us
        for name, count in stats.fault_counts.items():
            hybrid.qa_fault_counts[name] = (
                hybrid.qa_fault_counts.get(name, 0) + count
            )
        breaker = getattr(self.device, "breaker", None)
        if breaker is not None:
            hybrid.breaker_state = breaker.state.value
            hybrid.breaker_transitions = len(breaker.transitions)

    def _maybe_checkpoint(self, solver: CdclSolver) -> None:
        """Snapshot the solve every ``checkpoint_every`` conflicts.

        Only fires once the warm-up has completed: after that the run
        is pure CDCL, so the engine state plus :class:`HybridStats` is
        the *complete* solve state — no device or frontend state needs
        capturing, and a resumed run is bit-identical.
        """
        config = self.config
        if config.checkpoint_every <= 0 or config.checkpoint_path is None:
            return
        if solver.stats.iterations <= self.hybrid_stats.warmup_iterations:
            return
        conflicts = solver.stats.conflicts
        if conflicts - self._conflicts_at_checkpoint < config.checkpoint_every:
            return
        from repro.service.checkpoint import save_checkpoint

        self._conflicts_at_checkpoint = conflicts
        hybrid = self.hybrid_stats.as_dict()
        # The frontend's live cache counters are folded into the stats
        # only at end-of-solve; the snapshot must carry them itself.
        hybrid["frontend_cache_hits"] += self._frontend.cache_hits
        hybrid["frontend_cache_misses"] += self._frontend.cache_misses
        # Likewise the resilience layer's counters (retries, budget
        # spend, breaker state): end-of-solve sync hasn't happened yet,
        # so the snapshot must read the device's live totals.  A
        # resumed run skips this — its restored stats already *are* the
        # totals and the fresh device has made no calls.
        device_stats = getattr(self.device, "stats", None)
        if not self._resumed_from_checkpoint and device_stats is not None and (
            hasattr(device_stats, "retry_trace")
        ):
            hybrid["qa_retries"] = device_stats.retries
            hybrid["qa_budget_spent_us"] = device_stats.budget_spent_us
            fault_counts = dict(hybrid["qa_fault_counts"])
            for name, count in device_stats.fault_counts.items():
                fault_counts[name] = fault_counts.get(name, 0) + count
            hybrid["qa_fault_counts"] = fault_counts
            breaker = getattr(self.device, "breaker", None)
            if breaker is not None:
                hybrid["breaker_state"] = breaker.state.value
                hybrid["breaker_transitions"] = len(breaker.transitions)
        save_checkpoint(
            config.checkpoint_path,
            {
                "fingerprint": fingerprint(self.formula),
                "solver_seed": self.solver_config.seed,
                "hybrid_seed": config.seed,
                "conflicts": conflicts,
                "qa_disabled": self._qa_disabled,
                "hybrid": hybrid,
                "search": solver.capture_search_state(),
            },
        )
        tracer = self.observability.tracer
        if tracer.enabled:
            tracer.event("checkpoint.saved", conflicts=conflicts)

    def _load_resume_state(self) -> Optional[dict]:
        """A valid checkpoint for *this* formula and solver seed, or
        ``None`` (missing, corrupt, or mismatched — all start fresh)."""
        if self.config.checkpoint_path is None:
            return None
        from repro.service.checkpoint import load_checkpoint

        state = load_checkpoint(self.config.checkpoint_path)
        if state is None:
            return None
        if state.get("fingerprint") != fingerprint(self.formula):
            return None
        if state.get("solver_seed") != self.solver_config.seed:
            return None
        if state.get("hybrid_seed") != self.config.seed:
            return None
        return state

    def _observe_phase(self, phase: str, seconds: float) -> None:
        """Record one phase latency (no-op when metrics are off)."""
        metrics = self.observability.metrics
        if metrics is not None:
            metrics.histogram("hyqsat_phase_seconds").labels(
                phase=phase
            ).observe(seconds)

    def _qa_step(self, solver: CdclSolver) -> Optional[Assignment]:
        """One QA call: queue -> frontend -> device -> backend -> apply."""
        config = self.config
        stats = self.hybrid_stats
        obs = self.observability
        tracer = obs.tracer
        metrics = obs.metrics

        if solver.has_pending_decisions:
            if solver.stats.conflicts == self._conflicts_at_enqueue:
                # Let the previous call's guidance play out before
                # paying for another QA round; re-forcing every
                # iteration thrashes the search between inconsistent
                # subset solutions.
                return None
            # A conflict invalidated part of the old guidance: drop the
            # stale remainder and ask the device about the *new*
            # residual problem (the paper's cross-iterative loop).
            solver.clear_decision_queue()
        queue_start = time.perf_counter()
        with tracer.span("select") as select_span:
            unsat = solver.unsatisfied_original_clauses()
            if self._preseed:
                # Incrementally seeded clauses sit past the formula's
                # clause range; they steer propagation only — the QA
                # queue deploys original clauses.
                num_clauses = self.formula.num_clauses
                unsat = [ci for ci in unsat if ci < num_clauses]
            if not unsat:
                select_span.set(unsat=0, queue_len=0)
                return None
            conflicts_now = solver.stats.conflicts
            reused = (
                config.reuse_queue_between_conflicts
                and self._last_queue is not None
                and conflicts_now == self._conflicts_at_queue
            )
            if reused:
                # Nothing was learned since the last deploy, so the
                # activity queue is unchanged by construction:
                # re-present the identical (queue, snapshot) pair — the
                # frontend's compilation cache makes the prepare free —
                # and let the device draw fresh samples of the same
                # hard kernel.
                queue, snapshot = self._last_queue, self._last_snapshot
            else:
                if config.use_activity_queue:
                    activity = solver.counters.activity
                    if self._preseed:
                        activity = activity[: self.formula.num_clauses]
                    queue = self._queue_gen.generate(
                        activity,
                        self._capacity,
                        candidates=unsat,
                    )
                else:
                    queue = self._queue_gen.generate_random(
                        self._capacity, candidates=unsat
                    )
                snapshot = solver.current_assignment()
                self._last_queue = queue
                self._last_snapshot = snapshot
                self._conflicts_at_queue = conflicts_now
            select_span.set(
                unsat=len(unsat), queue_len=len(queue), reused=reused
            )
        queue_seconds = time.perf_counter() - queue_start
        self._observe_phase("select", queue_seconds)

        prepared = self._frontend.prepare(queue, snapshot)
        stats.frontend_seconds += queue_seconds
        if prepared is None:
            return None
        stats.frontend_seconds += prepared.elapsed_seconds
        self._observe_phase("embed", prepared.elapsed_seconds)

        anneal_span = tracer.start_span(
            "anneal",
            reads=prepared.request.num_reads,
            embedded=prepared.num_embedded,
        )
        anneal_start = time.perf_counter()
        try:
            anneal = self.device.run(prepared.request)
        except QaUnavailable as unavailable:
            # The resilience layer gave up on this call.  Per-call
            # exhaustion maps to the paper's Strategy 3 (no feedback,
            # warm-up continues); a persistent condition (open breaker,
            # spent budget) flips the rest of the run to pure CDCL —
            # the learned clauses stay, only the QA guidance stops.
            anneal_span.end(outcome="unavailable", reason=unavailable.reason)
            self._observe_phase("anneal", time.perf_counter() - anneal_start)
            stats.qa_failures += 1
            stats.qa_unavailable += 1
            if metrics is not None:
                metrics.counter("hyqsat_qa_failures_total").labels(
                    reason=unavailable.reason
                ).inc()
            if unavailable.persistent:
                self._qa_disabled = True
                stats.degraded = True
                stats.degraded_reason = unavailable.reason
                tracer.event("qa.degraded", reason=unavailable.reason)
                if metrics is not None:
                    metrics.gauge("hyqsat_degraded").set(1.0)
            return None
        except DeviceFault as fault:
            # A bare (unwrapped) faulty device: one lost call, treated
            # exactly like Strategy 3 — the QA call contributed
            # nothing and CDCL carries on.
            channel = fault_channel(fault)
            anneal_span.end(outcome="fault", fault=channel)
            self._observe_phase("anneal", time.perf_counter() - anneal_start)
            stats.qa_failures += 1
            stats.qa_fault_counts[channel] = (
                stats.qa_fault_counts.get(channel, 0) + 1
            )
            if metrics is not None:
                metrics.counter("hyqsat_qa_failures_total").labels(
                    reason=channel
                ).inc()
            return None
        anneal_span.end(
            outcome="ok",
            qpu_time_us=anneal.qpu_time_us,
            samples=len(anneal.samples),
            dropped_reads=anneal.dropped_reads,
            energy=anneal.best.energy,
        )
        self._observe_phase("anneal", time.perf_counter() - anneal_start)
        stats.qa_calls += 1
        stats.qa_dropped_reads += anneal.dropped_reads
        stats.qpu_time_us += anneal.qpu_time_us
        stats.embedded_clause_total += prepared.num_embedded
        stats.energies.append(anneal.best.energy)
        if metrics is not None:
            metrics.counter("hyqsat_qa_calls_total").inc()
            metrics.counter("hyqsat_qpu_time_us_total").inc(anneal.qpu_time_us)
            metrics.counter("hyqsat_embedded_clauses_total").inc(
                prepared.num_embedded
            )
            if anneal.dropped_reads:
                metrics.counter("hyqsat_qa_dropped_reads_total").inc(
                    anneal.dropped_reads
                )
            metrics.histogram("hyqsat_qa_energy").observe(anneal.best.energy)
            metrics.histogram("hyqsat_chain_break_fraction").observe(
                anneal.best.chain_break_fraction
            )

        all_embedded = set(prepared.formula_clauses) >= set(unsat)
        with tracer.span("classify") as classify_span:
            decision = self._backend.interpret(
                anneal,
                prepared.embedded_variables,
                self.formula.num_vars,
                all_embedded,
            )
            classify_span.set(
                band=decision.band.value,
                strategy=decision.strategy.name.lower(),
                energy=decision.energy,
            )
        self._observe_phase("classify", decision.elapsed_seconds)
        backend_start = time.perf_counter()
        with tracer.span(
            "feedback", strategy=decision.strategy.name.lower()
        ):
            proposal = self._apply(decision, solver)
        feedback_seconds = time.perf_counter() - backend_start
        self._observe_phase("feedback", feedback_seconds)
        stats.backend_seconds += decision.elapsed_seconds + feedback_seconds
        stats.strategy_counts[decision.strategy] += 1
        if metrics is not None:
            metrics.counter("hyqsat_band_total").labels(
                band=decision.band.value
            ).inc()
            metrics.counter("hyqsat_strategy_total").labels(
                strategy=decision.strategy.name.lower()
            ).inc()
        return proposal

    def _apply(
        self, decision: BackendDecision, solver: CdclSolver
    ) -> Optional[Assignment]:
        """Apply a feedback strategy to the live CDCL solver."""
        if decision.strategy is Strategy.ACCEPT_SOLUTION:
            candidate = solver.current_assignment()
            for var, value in decision.assignment.items():
                if var not in candidate:
                    candidate.assign(var, value)
            return candidate.completed(self.formula.num_vars)

        if decision.strategy is Strategy.KEEP_ASSIGNMENT:
            # "The assignments from QA can be directly used in the next
            # search state" (Figure 9 (a)): queue the QA values as the
            # upcoming decisions so the search jumps to the QA solution
            # of the hard kernel, and save them as phases so restarts
            # and backtracks keep steering towards it.  Wrong values
            # are repaired by ordinary conflict resolution.
            solver.clear_decision_queue()
            for var, value in decision.assignment.items():
                solver.set_phase(var, value)
                if solver.value_of_var(var) is None:
                    solver.enqueue_decision(Lit(var if value else -var))
            self._conflicts_at_enqueue = solver.stats.conflicts
            return None

        if decision.strategy is Strategy.RUSH_CONFLICT:
            solver.clear_decision_queue()
            enqueued = 0
            for var in decision.variables:
                if var > self.formula.num_vars:
                    continue
                solver.bump_variable(var, self.config.strategy_4_bump)
                if enqueued < self.config.strategy_4_decisions:
                    value = decision.assignment.get(var)
                    if solver.value_of_var(var) is None:
                        lit = Lit(var if (value is None or value) else -var)
                        solver.enqueue_decision(lit)
                        enqueued += 1
            return None

        return None  # Strategy 3: no feedback
