"""Configuration of the hybrid solver and its resilience policies.

Besides :class:`HyQSatConfig` this module holds the dataclass policies
consumed by :mod:`repro.resilience`: retry/backoff, per-call deadline +
global QA time budget, and the circuit breaker.  All times are
*modelled device microseconds* (the
:class:`~repro.annealer.timing.QpuTimingModel` clock), never wall
clock, so budgeted behaviour is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ml.intervals import ConfidenceBands


@dataclass(frozen=True)
class RetryPolicy:
    """Retry + exponential backoff with decorrelated jitter.

    Attempt *k*'s backoff is drawn uniformly from
    ``[base_backoff_us, min(max_backoff_us, 3 * previous_backoff)]``
    (the AWS "decorrelated jitter" scheme), from a seeded RNG so the
    whole retry trace replays deterministically.  Backoff time is
    charged against the QA budget like any other device time.
    """

    max_attempts: int = 4
    base_backoff_us: float = 100.0
    max_backoff_us: float = 10_000.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_us < 0:
            raise ValueError("base_backoff_us must be non-negative")
        if self.max_backoff_us < self.base_backoff_us:
            raise ValueError("max_backoff_us must be >= base_backoff_us")


@dataclass(frozen=True)
class BreakerPolicy:
    """Circuit breaker: closed → open → half-open → closed.

    ``failure_threshold`` consecutive failed calls open the breaker;
    after ``cooldown_us`` of modelled time it admits
    ``half_open_probes`` probe call(s) — all must succeed to close it,
    any failure reopens it and restarts the cooldown.
    """

    failure_threshold: int = 5
    cooldown_us: float = 50_000.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_us < 0:
            raise ValueError("cooldown_us must be non-negative")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything :class:`~repro.resilience.ResilientDevice` needs.

    ``call_deadline_us`` caps the modelled time of one device call —
    requests that cannot fit are truncated to the reads that do;
    ``qa_budget_us`` is the global modelled-time budget across the
    whole solve (``None`` = unlimited).  ``accept_partial_reads``
    salvages the partial samples a :class:`ReadoutTimeout` carries
    instead of discarding them; ``recalibrate_on_drift`` answers a
    :class:`CalibrationDrift` with a recalibration before retrying.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    call_deadline_us: Optional[float] = None
    qa_budget_us: Optional[float] = None
    accept_partial_reads: bool = True
    recalibrate_on_drift: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.call_deadline_us is not None and self.call_deadline_us <= 0:
            raise ValueError("call_deadline_us must be positive when set")
        if self.qa_budget_us is not None and self.qa_budget_us <= 0:
            raise ValueError("qa_budget_us must be positive when set")


@dataclass
class HyQSatConfig:
    """Tunables of :class:`~repro.core.hyqsat.HyQSatSolver`.

    The defaults reproduce the paper's configuration; the ablation
    switches (``use_activity_queue``, ``adjust_coefficients``, the
    per-strategy enables) exist for the Figure 10 / 14 / 15
    experiments.
    """

    #: Clauses drawn with top-k activity form the queue-head pool
    #: (Section IV-A uses 30).
    top_k: int = 30

    #: Hard cap on queue length; None derives it from the hardware
    #: (the paper's 2000Q capacity is ~170 clauses).
    max_queue_clauses: Optional[int] = None

    #: Warm-up length; None uses ceil(sqrt(K_est)) per Section III.
    warmup_iterations: Optional[int] = None

    #: Run QA on every ``qa_period``-th warm-up iteration (1 = every
    #: iteration, as in the paper).
    qa_period: int = 1

    #: Samples per QA call; the paper executes a single sample and lets
    #: CDCL absorb errors.
    num_reads: int = 1

    #: Anneal all ``num_reads × num_restarts`` replicas of a QA call as
    #: one batched state matrix (the vectorised hot path).  Only
    #: applied when the solver constructs its own default device; a
    #: user-supplied :class:`~repro.annealer.device.AnnealerDevice`
    #: keeps its own sampler configuration.
    batch_reads: bool = True

    #: LRU bound (entries) of the frontend compilation cache, which
    #: memoises encode → embed → normalise → compile per
    #: (clause-queue fingerprint, trail restriction).  0 disables it.
    frontend_cache_size: int = 64

    #: While no new conflict has been learned since the last QA call,
    #: re-deploy the *same* clause queue and trail snapshot instead of
    #: drawing a fresh random queue head: the activity scores — and so
    #: the "hardest clauses" — only change at conflicts, the frontend
    #: compilation cache turns the repeat into a free prepare, and the
    #: device still draws fresh samples (its per-call seed advances).
    reuse_queue_between_conflicts: bool = True

    #: Section IV-C coefficient adjustment on/off (Figure 15 ablation).
    adjust_coefficients: bool = True

    #: Section IV-A activity queue vs. random queue (Figure 14 ablation).
    use_activity_queue: bool = True

    #: Energy partition; the default is the paper's 2000Q calibration.
    bands: ConfidenceBands = field(default_factory=ConfidenceBands)

    #: Feedback strategy enables (Figure 10 ablation).  Strategy 3 is
    #: a no-op by definition and has no switch.
    enable_strategy_1: bool = True
    enable_strategy_2: bool = True
    enable_strategy_4: bool = True

    #: VSIDS bump amount applied to embedded variables by strategy 4.
    strategy_4_bump: float = 10.0

    #: How many embedded variables strategy 4 queues as forced
    #: decisions to race to the conflict.
    strategy_4_decisions: int = 8

    #: RNG seed for queue-head selection.
    seed: int = 0

    #: CDCL engine backing the hybrid search: ``"reference"`` (pure
    #: Python) or ``"fast"`` (native kernel).  Both are bit-identical;
    #: ``fast`` degrades to ``reference`` when no C compiler exists.
    engine: str = "reference"

    #: Keep one warm CDCL instance across repeated ``solve()`` calls of
    #: the same :class:`~repro.core.hyqsat.HyQSatSolver` (incremental
    #: re-solve with learned-clause retention) instead of cold-starting.
    warm_start: bool = False

    #: Checkpoint the search to ``checkpoint_path`` every this many
    #: conflicts once the √K warm-up has completed (0 disables
    #: checkpointing).  A later ``solve()`` finding a valid checkpoint
    #: for the same formula resumes mid-search, bit-identical to an
    #: uninterrupted run (see :mod:`repro.service.checkpoint`).
    checkpoint_every: int = 0

    #: Checkpoint file location; required when ``checkpoint_every`` > 0.
    checkpoint_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.engine not in ("reference", "fast"):
            raise ValueError(
                f"unknown CDCL engine {self.engine!r}; "
                "expected 'reference' or 'fast'"
            )
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.qa_period < 1:
            raise ValueError("qa_period must be >= 1")
        if self.num_reads < 1:
            raise ValueError("num_reads must be >= 1")
        if self.max_queue_clauses is not None and self.max_queue_clauses < 1:
            raise ValueError("max_queue_clauses must be >= 1 when set")
        if self.warmup_iterations is not None and self.warmup_iterations < 0:
            raise ValueError("warmup_iterations must be >= 0 when set")
        if self.strategy_4_decisions < 0:
            raise ValueError("strategy_4_decisions must be >= 0")
        if self.frontend_cache_size < 0:
            raise ValueError("frontend_cache_size must be >= 0")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be >= 0")
        if self.checkpoint_every > 0 and self.checkpoint_path is None:
            raise ValueError(
                "checkpoint_path is required when checkpoint_every > 0"
            )
