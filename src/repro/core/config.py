"""Configuration of the hybrid solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.ml.intervals import ConfidenceBands


@dataclass
class HyQSatConfig:
    """Tunables of :class:`~repro.core.hyqsat.HyQSatSolver`.

    The defaults reproduce the paper's configuration; the ablation
    switches (``use_activity_queue``, ``adjust_coefficients``, the
    per-strategy enables) exist for the Figure 10 / 14 / 15
    experiments.
    """

    #: Clauses drawn with top-k activity form the queue-head pool
    #: (Section IV-A uses 30).
    top_k: int = 30

    #: Hard cap on queue length; None derives it from the hardware
    #: (the paper's 2000Q capacity is ~170 clauses).
    max_queue_clauses: Optional[int] = None

    #: Warm-up length; None uses ceil(sqrt(K_est)) per Section III.
    warmup_iterations: Optional[int] = None

    #: Run QA on every ``qa_period``-th warm-up iteration (1 = every
    #: iteration, as in the paper).
    qa_period: int = 1

    #: Samples per QA call; the paper executes a single sample and lets
    #: CDCL absorb errors.
    num_reads: int = 1

    #: Anneal all ``num_reads × num_restarts`` replicas of a QA call as
    #: one batched state matrix (the vectorised hot path).  Only
    #: applied when the solver constructs its own default device; a
    #: user-supplied :class:`~repro.annealer.device.AnnealerDevice`
    #: keeps its own sampler configuration.
    batch_reads: bool = True

    #: LRU bound (entries) of the frontend compilation cache, which
    #: memoises encode → embed → normalise → compile per
    #: (clause-queue fingerprint, trail restriction).  0 disables it.
    frontend_cache_size: int = 64

    #: While no new conflict has been learned since the last QA call,
    #: re-deploy the *same* clause queue and trail snapshot instead of
    #: drawing a fresh random queue head: the activity scores — and so
    #: the "hardest clauses" — only change at conflicts, the frontend
    #: compilation cache turns the repeat into a free prepare, and the
    #: device still draws fresh samples (its per-call seed advances).
    reuse_queue_between_conflicts: bool = True

    #: Section IV-C coefficient adjustment on/off (Figure 15 ablation).
    adjust_coefficients: bool = True

    #: Section IV-A activity queue vs. random queue (Figure 14 ablation).
    use_activity_queue: bool = True

    #: Energy partition; the default is the paper's 2000Q calibration.
    bands: ConfidenceBands = field(default_factory=ConfidenceBands)

    #: Feedback strategy enables (Figure 10 ablation).  Strategy 3 is
    #: a no-op by definition and has no switch.
    enable_strategy_1: bool = True
    enable_strategy_2: bool = True
    enable_strategy_4: bool = True

    #: VSIDS bump amount applied to embedded variables by strategy 4.
    strategy_4_bump: float = 10.0

    #: How many embedded variables strategy 4 queues as forced
    #: decisions to race to the conflict.
    strategy_4_decisions: int = 8

    #: RNG seed for queue-head selection.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.top_k < 1:
            raise ValueError("top_k must be >= 1")
        if self.qa_period < 1:
            raise ValueError("qa_period must be >= 1")
        if self.num_reads < 1:
            raise ValueError("num_reads must be >= 1")
        if self.max_queue_clauses is not None and self.max_queue_clauses < 1:
            raise ValueError("max_queue_clauses must be >= 1 when set")
        if self.warmup_iterations is not None and self.warmup_iterations < 0:
            raise ValueError("warmup_iterations must be >= 0 when set")
        if self.strategy_4_decisions < 0:
            raise ValueError("strategy_4_decisions must be >= 0")
        if self.frontend_cache_size < 0:
            raise ValueError("frontend_cache_size must be >= 0")
