"""End-to-end time accounting (Figure 1, Figure 11, Table II).

Absolute wall-clock against the paper's CPUs is meaningless here, so
end-to-end time is *modelled* from its components, exactly the way the
paper sums them: frontend CPU time + QA device time (from the
:class:`~repro.annealer.timing.QpuTimingModel`) + backend CPU time +
remaining-CDCL CPU time.

Two kinds of components mix in that sum:

- The CDCL share is ``iterations x per-iteration cost`` with the
  per-iteration cost *measured on this machine* from the classical
  baseline — both sides of every speedup ratio are the same Python
  engine, so the ratio is meaningful.
- The per-QA-call frontend/backend/device costs are priced from the
  paper's published constants (like the 20 us + 110 us QPU timing):
  the paper measures ~15.7 us per embedding with queue generation
  pipelined behind it, and a near-constant backend.  Our pure-Python
  frontend takes milliseconds per call — three orders of magnitude off
  the C implementation the paper's numbers describe — so using its
  measured time would price one QA call at hundreds of CDCL
  iterations and say nothing about the algorithm.  The measured times
  remain available in :class:`~repro.core.hyqsat.HybridStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Modelled frontend CPU cost per QA call (us): clause-queue pop +
#: linear embedding (the paper reports 15.7 us embeddings with queue
#: generation pipelined into them).
PAPER_FRONTEND_US_PER_CALL = 20.0

#: Modelled backend CPU cost per QA call (us): near-constant band
#: classification plus feedback bookkeeping (Section VI-C notes the
#: classification is near-constant time).
PAPER_BACKEND_US_PER_CALL = 50.0


@dataclass(frozen=True)
class TimeBreakdown:
    """Modelled end-to-end time of one hybrid solve, in seconds."""

    frontend_s: float
    qpu_s: float
    backend_s: float
    cdcl_s: float

    @property
    def total_s(self) -> float:
        """Sum of all components."""
        return self.frontend_s + self.qpu_s + self.backend_s + self.cdcl_s

    @property
    def warmup_s(self) -> float:
        """The warm-up stage share (frontend + QA + backend)."""
        return self.frontend_s + self.qpu_s + self.backend_s

    def shares(self) -> Dict[str, float]:
        """Fractions per component (the Figure 11 bars)."""
        total = self.total_s
        if total <= 0:
            return {"frontend": 0.0, "qa": 0.0, "backend": 0.0, "cdcl": 0.0}
        return {
            "frontend": self.frontend_s / total,
            "qa": self.qpu_s / total,
            "backend": self.backend_s / total,
            "cdcl": self.cdcl_s / total,
        }

    def __str__(self) -> str:
        shares = self.shares()
        return (
            f"total {self.total_s * 1e3:.3f} ms = "
            f"frontend {shares['frontend']:.1%} + qa {shares['qa']:.1%} + "
            f"backend {shares['backend']:.1%} + cdcl {shares['cdcl']:.1%}"
        )
