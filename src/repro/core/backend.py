"""The HyQSAT backend: from QA to CDCL (Section V).

Reads a device result, classifies the energy into one of the four
confidence bands, and decides which feedback strategy applies
(Section V-B's dispatch table):

==================  ============  =================  =========  ====================
                    Satisfiable   Near satisfiable   Uncertain  Near unsatisfiable
==================  ============  =================  =========  ====================
All embedded        Strategy 1    Strategy 2         Strategy 3 Strategy 4
Not all embedded    Strategy 2    Strategy 2         Strategy 3 Strategy 4
==================  ============  =================  =========  ====================

The decision is a plain data object; applying it to the CDCL solver is
the hybrid loop's job (:mod:`repro.core.hyqsat`), which keeps the
backend unit-testable without a live search.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.annealer.device import AnnealResult, AnnealSample
from repro.ml.intervals import Band, ConfidenceBands
from repro.sat.assignment import Assignment


class Strategy(enum.Enum):
    """The four feedback strategies of Section V-B."""

    ACCEPT_SOLUTION = 1   # all embedded + satisfiable: stop with the model
    KEEP_ASSIGNMENT = 2   # maintain QA assignments as search phases
    NO_FEEDBACK = 3       # uncertain: QA contributes nothing this call
    RUSH_CONFLICT = 4     # near-unsatisfiable: prioritise embedded vars


@dataclass(frozen=True)
class BackendDecision:
    """What the CDCL side should do with one QA result.

    ``assignment`` is the best sample's logical assignment (formula
    variables only — auxiliaries stripped); ``variables`` are the
    formula variables that were embedded (strategy 4's bump targets).
    """

    strategy: Strategy
    band: Band
    energy: float
    assignment: Assignment
    variables: Tuple[int, ...]
    all_embedded: bool
    elapsed_seconds: float

    @property
    def proposes_model(self) -> bool:
        """True when strategy 1 fired (a full model candidate exists)."""
        return self.strategy is Strategy.ACCEPT_SOLUTION


class Backend:
    """Band classification + strategy dispatch."""

    def __init__(
        self,
        bands: Optional[ConfidenceBands] = None,
        enable_strategy_1: bool = True,
        enable_strategy_2: bool = True,
        enable_strategy_4: bool = True,
    ):
        self.bands = bands or ConfidenceBands()
        self.enable_strategy_1 = enable_strategy_1
        self.enable_strategy_2 = enable_strategy_2
        self.enable_strategy_4 = enable_strategy_4

    def interpret(
        self,
        result: AnnealResult,
        embedded_variables: Tuple[int, ...],
        num_formula_vars: int,
        all_embedded: bool,
    ) -> BackendDecision:
        """Classify the best sample and pick the feedback strategy.

        Parameters
        ----------
        result:
            Device output of one QA call.
        embedded_variables:
            Formula variables covered by the embedded clauses.
        num_formula_vars:
            Auxiliary variables (> num_formula_vars) are dropped from
            the returned assignment.
        all_embedded:
            Whether *every* currently-relevant clause was embedded
            (first row of the dispatch table).
        """
        start = time.perf_counter()
        best: AnnealSample = result.best
        band = self.bands.classify(best.energy)
        strategy = self._dispatch(band, all_embedded)

        assignment = Assignment(
            {
                var: best.assignment[var]
                for var in embedded_variables
                if var <= num_formula_vars and var in best.assignment
            }
        )
        return BackendDecision(
            strategy=strategy,
            band=band,
            energy=best.energy,
            assignment=assignment,
            variables=tuple(embedded_variables),
            all_embedded=all_embedded,
            elapsed_seconds=time.perf_counter() - start,
        )

    def _dispatch(self, band: Band, all_embedded: bool) -> Strategy:
        if band is Band.SATISFIABLE:
            if all_embedded and self.enable_strategy_1:
                return Strategy.ACCEPT_SOLUTION
            if self.enable_strategy_2:
                return Strategy.KEEP_ASSIGNMENT
            return Strategy.NO_FEEDBACK
        if band is Band.NEAR_SATISFIABLE:
            if self.enable_strategy_2:
                return Strategy.KEEP_ASSIGNMENT
            return Strategy.NO_FEEDBACK
        if band is Band.UNCERTAIN:
            return Strategy.NO_FEEDBACK
        if self.enable_strategy_4:
            return Strategy.RUSH_CONFLICT
        return Strategy.NO_FEEDBACK
