"""The HyQSAT frontend: from CDCL to QA (Section IV).

Pipeline per QA call:

1. take the clause queue (indices into the formula),
2. encode the queue clauses into the Eq. 5 objective,
3. apply the Section IV-C coefficient adjustment (optional),
4. embed with the linear-time Section IV-B scheme,
5. rebuild the objective over the *embedded* clauses only and
   normalise it into hardware range (Eq. 6).

The result carries everything the device needs
(:class:`~repro.annealer.device.AnnealRequest` ingredients) plus the
bookkeeping the backend needs (which formula clauses actually went to
hardware).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.annealer.device import AnnealRequest
from repro.embedding.base import Edge, Embedding
from repro.embedding.hyqsat_embed import HyQSatEmbedder, HyQSatEmbeddingResult
from repro.qubo.coefficients import adjust_coefficients
from repro.qubo.encoding import FormulaEncoding, encode_formula
from repro.qubo.ising import QuadraticObjective
from repro.qubo.normalization import normalize
from repro.sat.assignment import Assignment
from repro.sat.cnf import CNF, Clause
from repro.topology.chimera import ChimeraGraph


@dataclass(frozen=True)
class FrontendResult:
    """One prepared QA call.

    ``formula_clauses`` are indices into the *original formula* of the
    clauses that were embedded; ``request`` is ready for
    :meth:`~repro.annealer.device.AnnealerDevice.run`.  ``elapsed_seconds``
    is the frontend CPU time (Figure 11's frontend share).
    """

    request: AnnealRequest
    formula_clauses: Tuple[int, ...]
    embedding_result: HyQSatEmbeddingResult
    encoding: FormulaEncoding
    elapsed_seconds: float

    @property
    def num_embedded(self) -> int:
        """Count of formula clauses embedded for this call."""
        return len(self.formula_clauses)

    @property
    def embedded_variables(self) -> Tuple[int, ...]:
        """Formula variables involved in the embedded clauses."""
        out = set()
        for k in self.embedding_result.embedded_clauses:
            out.update(self.encoding.clauses[k].variables)
        return tuple(sorted(out))


class Frontend:
    """Builds QA requests from clause queues."""

    def __init__(
        self,
        formula: CNF,
        hardware: ChimeraGraph,
        adjust: bool = True,
        num_reads: int = 1,
    ):
        self.formula = formula
        self.hardware = hardware
        self.adjust = adjust
        self.num_reads = num_reads
        self._embedder = HyQSatEmbedder(hardware)

    def prepare(
        self,
        queue: Sequence[int],
        assignment: Optional["Assignment"] = None,
    ) -> Optional[FrontendResult]:
        """Encode + embed + normalise the clause queue.

        When ``assignment`` (the CDCL trail snapshot) is given, each
        clause is *conditioned* on it first: literals falsified by the
        trail are dropped, so the device solves the residual problem
        that is consistent with the current search state and its
        answers extend — rather than contradict — the trail.

        Returns None when nothing could be embedded (e.g. an empty
        queue or a first clause that exceeds hardware capacity).
        """
        start = time.perf_counter()
        if not queue:
            return None
        clauses = []
        kept_indices = []
        for i in queue:
            clause = self.formula.clauses[i]
            if assignment is not None:
                residual = [
                    lit for lit in clause.lits if lit.var not in assignment
                ]
                if not residual:
                    continue  # conflicting clause; propagation handles it
                clause = Clause(residual)
            clauses.append(clause)
            kept_indices.append(i)
        if not clauses:
            return None
        queue = kept_indices
        encoding = encode_formula(clauses, self.formula.num_vars)
        if self.adjust:
            encoding = adjust_coefficients(encoding).encoding

        embed_result = self._embedder.embed(encoding)
        if not embed_result.embedded_clauses:
            return None

        objective = self._embedded_objective(encoding, embed_result.embedded_clauses)
        normalized, d_star = normalize(objective)

        request = AnnealRequest(
            objective=normalized,
            embedding=embed_result.embedding,
            edge_couplers=embed_result.edge_couplers,
            energy_scale=d_star,
            num_reads=self.num_reads,
        )
        formula_clauses = tuple(queue[k] for k in embed_result.embedded_clauses)
        return FrontendResult(
            request=request,
            formula_clauses=formula_clauses,
            embedding_result=embed_result,
            encoding=encoding,
            elapsed_seconds=time.perf_counter() - start,
        )

    @staticmethod
    def _embedded_objective(
        encoding: FormulaEncoding, embedded_clauses: Sequence[int]
    ) -> QuadraticObjective:
        """Sum the weighted sub-objectives of the embedded clauses only
        (the dropped clauses stay on the CDCL side)."""
        keep = set(embedded_clauses)
        total = QuadraticObjective()
        for sub in encoding.sub_objectives:
            if sub.clause_index in keep:
                total.add_objective(sub.objective, scale=sub.coefficient)
        return total
