"""The HyQSAT frontend: from CDCL to QA (Section IV).

Pipeline per QA call:

1. take the clause queue (indices into the formula),
2. encode the queue clauses into the Eq. 5 objective,
3. apply the Section IV-C coefficient adjustment (optional),
4. embed with the linear-time Section IV-B scheme,
5. rebuild the objective over the *embedded* clauses only and
   normalise it into hardware range (Eq. 6),
6. optionally precompile the physical :class:`EmbeddedProblem` for the
   device (when the device's chain strength is known).

The result carries everything the device needs
(:class:`~repro.annealer.device.AnnealRequest` ingredients) plus the
bookkeeping the backend needs (which formula clauses actually went to
hardware).

**Compilation cache.**  Inside one hybrid solve the activity queue
stabilises after a few conflicts, so the frontend sees the same clause
queue — restricted by the same trail snapshot — over and over.  Each
prepared call is therefore memoised in a bounded LRU keyed on
``(clause-queue fingerprint, partial-assignment restriction)``:

- the *fingerprint* is the sorted tuple of queued formula clause
  indices (order-insensitive — the prepared request only depends on
  the clause *set*, so a re-ordered BFS of the same set hits);
- the *restriction* is the ``(var, value)`` snapshot of the trail over
  exactly the variables occurring in the queued clauses — the only
  part of the trail that affects clause conditioning — so unrelated
  trail growth does not spuriously invalidate entries, while any
  change to a relevant variable does.

A hit skips encode, coefficient adjustment, embed, normalise, *and*
(via the ``compiled`` payload on the request) the device-side chain
compile.  Hit/miss counters are exposed for
:class:`~repro.core.hyqsat.HybridStats`.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.annealer.device import AnnealRequest
from repro.annealer.embedded import build_embedded_problem
from repro.embedding.base import Edge, Embedding, EmbeddingTimeout
from repro.embedding.hyqsat_embed import HyQSatEmbedder, HyQSatEmbeddingResult
from repro.qubo.coefficients import adjust_coefficients
from repro.qubo.encoding import FormulaEncoding, encode_formula
from repro.qubo.ising import QuadraticObjective
from repro.qubo.normalization import normalize
from repro.sat.assignment import Assignment
from repro.sat.cnf import CNF, Clause
from repro.topology.chimera import ChimeraGraph

#: The request object a prepared (and possibly cached) frontend call
#: hands to the device.  Alias kept so cache-level APIs/tests can talk
#: about "prepared requests" without importing the annealer layer.
PreparedRequest = AnnealRequest

#: Cache key: (sorted queue clause indices, ((var, value), ...) trail
#: restriction over the queue's variables).
CacheKey = Tuple[Tuple[int, ...], Tuple[Tuple[int, bool], ...]]

#: Sentinel distinguishing "not cached" from a cached ``None`` result.
_MISSING = object()


@dataclass(frozen=True)
class FrontendResult:
    """One prepared QA call.

    ``formula_clauses`` are indices into the *original formula* of the
    clauses that were embedded; ``request`` is ready for
    :meth:`~repro.annealer.device.AnnealerDevice.run`.  ``elapsed_seconds``
    is the frontend CPU time (Figure 11's frontend share); for a cache
    hit it is the (tiny) lookup time, not the original compile time.
    """

    request: AnnealRequest
    formula_clauses: Tuple[int, ...]
    embedding_result: HyQSatEmbeddingResult
    encoding: FormulaEncoding
    elapsed_seconds: float

    @property
    def num_embedded(self) -> int:
        """Count of formula clauses embedded for this call."""
        return len(self.formula_clauses)

    @property
    def embedded_variables(self) -> Tuple[int, ...]:
        """Formula variables involved in the embedded clauses."""
        out = set()
        for k in self.embedding_result.embedded_clauses:
            out.update(self.encoding.clauses[k].variables)
        return tuple(sorted(out))


class Frontend:
    """Builds QA requests from clause queues.

    Parameters
    ----------
    cache_size:
        LRU bound of the compilation cache (entries); ``0`` disables
        caching entirely.
    chain_strength:
        When set (the hybrid solver passes its device's value), each
        prepared request also carries the precompiled
        :class:`~repro.annealer.embedded.EmbeddedProblem` so the device
        skips its own compile.
    """

    def __init__(
        self,
        formula: CNF,
        hardware: ChimeraGraph,
        adjust: bool = True,
        num_reads: int = 1,
        cache_size: int = 64,
        chain_strength: Optional[float] = None,
        observability=None,
    ):
        if cache_size < 0:
            raise ValueError("cache_size must be non-negative")
        from repro.observability import DISABLED, declare_solver_metrics

        self.formula = formula
        self.hardware = hardware
        self.adjust = adjust
        self.num_reads = num_reads
        self.cache_size = cache_size
        self.chain_strength = chain_strength
        self.cache_hits = 0
        self.cache_misses = 0
        #: Tracing/metrics bundle: each prepare becomes an ``embed``
        #: span (with a ``compile`` child on a chain-compiling miss)
        #: and the cache counters mirror into the metrics registry.
        self.observability = observability or DISABLED
        if self.observability.metrics is not None:
            declare_solver_metrics(self.observability.metrics)
        self._cache: "OrderedDict[CacheKey, Optional[FrontendResult]]" = OrderedDict()
        self._embedder = HyQSatEmbedder(hardware)

    def reset_cache(self) -> None:
        """Drop all cached entries and zero the hit/miss counters."""
        self._cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0

    def prepare(
        self,
        queue: Sequence[int],
        assignment: Optional["Assignment"] = None,
    ) -> Optional[FrontendResult]:
        """Encode + embed + normalise the clause queue.

        When ``assignment`` (the CDCL trail snapshot) is given, each
        clause is *conditioned* on it first: literals falsified by the
        trail are dropped, so the device solves the residual problem
        that is consistent with the current search state and its
        answers extend — rather than contradict — the trail.

        Returns None when nothing could be embedded (e.g. an empty
        queue or a first clause that exceeds hardware capacity).
        Results (including the None outcome) are memoised in the
        compilation cache; a hit returns the cached result with only
        ``elapsed_seconds`` refreshed to the lookup cost.
        """
        start = time.perf_counter()
        if not queue:
            return None
        obs = self.observability
        metrics = obs.metrics
        with obs.tracer.span("embed", queue_clauses=len(queue)) as span:
            key: Optional[CacheKey] = None
            if self.cache_size > 0:
                key = self._cache_key(queue, assignment)
                cached = self._cache.get(key, _MISSING)
                if cached is not _MISSING:
                    self._cache.move_to_end(key)
                    self.cache_hits += 1
                    if metrics is not None:
                        metrics.counter(
                            "hyqsat_frontend_cache_hits_total"
                        ).inc()
                    span.set(
                        cache_hit=True,
                        embedded=0 if cached is None else cached.num_embedded,
                    )
                    if cached is None:
                        return None
                    return replace(
                        cached, elapsed_seconds=time.perf_counter() - start
                    )
                self.cache_misses += 1
                if metrics is not None:
                    metrics.counter("hyqsat_frontend_cache_misses_total").inc()
            result = self._prepare_uncached(queue, assignment, start)
            span.set(
                cache_hit=False,
                embedded=0 if result is None else result.num_embedded,
            )
            if key is not None:
                self._cache[key] = result
                if len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
            return result

    def _cache_key(
        self, queue: Sequence[int], assignment: Optional["Assignment"]
    ) -> CacheKey:
        """(queue fingerprint, trail restriction) — see module docs."""
        fingerprint = tuple(sorted(queue))
        if assignment is None:
            return fingerprint, ()
        pairs = set()
        for i in fingerprint:
            for lit in self.formula.clauses[i].lits:
                value = assignment.get(lit.var)
                if value is not None:
                    pairs.add((lit.var, value))
        return fingerprint, tuple(sorted(pairs))

    def _prepare_uncached(
        self,
        queue: Sequence[int],
        assignment: Optional["Assignment"],
        start: float,
    ) -> Optional[FrontendResult]:
        clauses = []
        kept_indices = []
        for i in queue:
            clause = self.formula.clauses[i]
            if assignment is not None:
                residual = [
                    lit for lit in clause.lits if lit.var not in assignment
                ]
                if not residual:
                    continue  # conflicting clause; propagation handles it
                clause = Clause(residual)
            clauses.append(clause)
            kept_indices.append(i)
        if not clauses:
            return None
        queue = kept_indices
        encoding = encode_formula(clauses, self.formula.num_vars)
        if self.adjust:
            encoding = adjust_coefficients(encoding).encoding

        try:
            embed_result = self._embedder.embed(encoding)
        except EmbeddingTimeout:
            # An over-budget embed is a skippable clause queue, not a
            # crash: this QA call is forfeited (the paper's Strategy 3
            # outcome) and CDCL continues unaided.
            return None
        if not embed_result.embedded_clauses:
            return None

        objective = self._embedded_objective(encoding, embed_result.embedded_clauses)
        normalized, d_star = normalize(objective)
        if not normalized.variables:
            # The queue's sub-objectives summed to a constant (every
            # assignment violates the same number of queued clauses —
            # e.g. a complete UNSAT core): the device has nothing to
            # decide, so skip the call and let CDCL refute it.
            return None

        compiled = None
        if self.chain_strength is not None:
            with self.observability.tracer.span("compile", where="frontend"):
                compiled = build_embedded_problem(
                    normalized,
                    embed_result.embedding,
                    self.hardware,
                    embed_result.edge_couplers,
                    chain_strength=self.chain_strength,
                )
        request = AnnealRequest(
            objective=normalized,
            embedding=embed_result.embedding,
            edge_couplers=embed_result.edge_couplers,
            energy_scale=d_star,
            num_reads=self.num_reads,
            compiled=compiled,
        )
        formula_clauses = tuple(queue[k] for k in embed_result.embedded_clauses)
        return FrontendResult(
            request=request,
            formula_clauses=formula_clauses,
            embedding_result=embed_result,
            encoding=encoding,
            elapsed_seconds=time.perf_counter() - start,
        )

    @staticmethod
    def _embedded_objective(
        encoding: FormulaEncoding, embedded_clauses: Sequence[int]
    ) -> QuadraticObjective:
        """Sum the weighted sub-objectives of the embedded clauses only
        (the dropped clauses stay on the CDCL side)."""
        keep = set(embedded_clauses)
        total = QuadraticObjective()
        for sub in encoding.sub_objectives:
            if sub.clause_index in keep:
                total.add_objective(sub.objective, scale=sub.coefficient)
        return total
