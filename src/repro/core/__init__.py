"""HyQSAT: the hybrid QA + CDCL solver (the paper's contribution).

The pieces map one-to-one onto the paper's architecture (Figure 4):

- :mod:`repro.core.clause_queue` — activity-ordered BFS clause queue
  (Section IV-A).
- :mod:`repro.core.frontend` — queue → Eq. 5 encoding → Section IV-C
  coefficient adjustment → Section IV-B embedding → Eq. 6
  normalisation.
- :mod:`repro.core.backend` — energy → confidence band → feedback
  strategy (Section V).
- :mod:`repro.core.hyqsat` — the cross-iterative hybrid loop with the
  √K warm-up schedule (Section III), driving a
  :class:`~repro.cdcl.solver.CdclSolver` through its iteration hook.
- :mod:`repro.core.timing` — end-to-end time accounting (Figure 11 /
  Table II breakdowns).
"""

from repro.core.backend import Backend, BackendDecision, Strategy
from repro.core.clause_queue import ClauseQueueGenerator
from repro.core.config import (
    BreakerPolicy,
    HyQSatConfig,
    ResilienceConfig,
    RetryPolicy,
)
from repro.core.frontend import Frontend, FrontendResult
from repro.core.hyqsat import HybridStats, HyQSatResult, HyQSatSolver, estimate_iterations
from repro.core.timing import TimeBreakdown

__all__ = [
    "Backend",
    "BackendDecision",
    "BreakerPolicy",
    "ClauseQueueGenerator",
    "Frontend",
    "FrontendResult",
    "HybridStats",
    "HyQSatConfig",
    "HyQSatResult",
    "HyQSatSolver",
    "ResilienceConfig",
    "RetryPolicy",
    "Strategy",
    "TimeBreakdown",
    "estimate_iterations",
]
