"""Clause queue generation (Section IV-A).

The queue decides which clauses the annealer accelerates.  The head is
drawn at random from the clauses with top-k activity scores (random so
repeated calls without score updates do not re-deploy the identical
queue), then the queue grows by breadth-first traversal: for each
clause in the queue, clauses sharing one of its variables are pushed,
variable by variable, until the capacity bound is hit.  BFS over shared
variables maximises variable locality, which is what lets the embedder
reuse vertical lines and couplers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.sat.cnf import CNF


class ClauseQueueGenerator:
    """Generates activity-ordered BFS clause queues for a formula.

    The variable -> clauses index is built once per formula; queue
    generation itself is linear in the number of clauses visited.
    """

    def __init__(self, formula: CNF, top_k: int = 30, seed: int = 0):
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.formula = formula
        self.top_k = top_k
        self._rng = np.random.default_rng(seed)
        self._clauses_of_var: Dict[int, List[int]] = formula.clause_index()

    def generate(
        self,
        activity: Sequence[float],
        capacity: int,
        candidates: Optional[Sequence[int]] = None,
    ) -> List[int]:
        """Build a clause queue of at most ``capacity`` clause indices.

        Parameters
        ----------
        activity:
            Per-clause activity scores (Section IV-A), indexed like the
            formula's clauses.
        capacity:
            Maximum queue length (the QA embedding capacity).
        candidates:
            Restrict the queue to these clause indices (the hybrid
            solver passes the currently-unsatisfied clauses).  None
            means all clauses.
        """
        if capacity < 1:
            return []
        if len(activity) != self.formula.num_clauses:
            raise ValueError(
                f"activity length {len(activity)} != num_clauses "
                f"{self.formula.num_clauses}"
            )
        pool = list(candidates) if candidates is not None else list(
            range(self.formula.num_clauses)
        )
        if not pool:
            return []
        allowed: Set[int] = set(pool)

        head = self._pick_head(activity, pool)
        queue: List[int] = [head]
        in_queue: Set[int] = {head}
        cursor = 0
        while cursor < len(queue) and len(queue) < capacity:
            clause = self.formula.clauses[queue[cursor]]
            cursor += 1
            for var in (lit.var for lit in clause.lits):
                for other in self._clauses_of_var.get(var, ()):
                    if other in in_queue or other not in allowed:
                        continue
                    queue.append(other)
                    in_queue.add(other)
                    if len(queue) >= capacity:
                        return queue
        return queue

    def generate_random(
        self,
        capacity: int,
        candidates: Optional[Sequence[int]] = None,
    ) -> List[int]:
        """The Figure 14 baseline: a uniformly random clause queue."""
        pool = list(candidates) if candidates is not None else list(
            range(self.formula.num_clauses)
        )
        if not pool or capacity < 1:
            return []
        take = min(capacity, len(pool))
        picked = self._rng.choice(np.array(pool), size=take, replace=False)
        return [int(i) for i in picked]

    def _pick_head(self, activity: Sequence[float], pool: List[int]) -> int:
        """Random draw from the top-k activity clauses of the pool."""
        ordered = sorted(pool, key=lambda i: (-activity[i], i))
        top = ordered[: self.top_k]
        return int(self._rng.choice(np.array(top)))
